// Distributed temporal blocking (Wittmann et al. [22] direction):
// communication accounting for Z-slab domain decomposition with thick
// halos. Temporal blocking exchanges halos of thickness R*dim_t once per
// dim_t steps: the per-step byte volume is unchanged, but the message
// count (i.e. latency and synchronization events) drops by dim_t — plus
// each rank's interior work per exchange grows, improving overlap.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "stencil/distributed.h"

using namespace s35;

int main() {
  std::puts("== Distributed 3.5D: halo-exchange accounting (7-pt SP) ==");
  const long n = env_int("S35_FULL", 0) ? 192 : 96;
  const int ranks = 4;
  const int steps = 8;
  core::Engine35 engine(bench::bench_threads());
  const auto stencil = stencil::default_stencil7<float>();

  Table t({"dim_t", "halo planes", "msgs/step", "KB/step", "measured Mupd/s"});
  for (int dim_t : {1, 2, 4}) {
    stencil::DistributedStencilDriver<stencil::Stencil7<float>, float> driver(
        n, n, n, ranks, dim_t);
    grid::Grid3<float> g(n, n, n);
    g.fill_random(5, -1.0f, 1.0f);
    driver.scatter(g);

    stencil::SweepConfig cfg;
    cfg.dim_t = dim_t;
    cfg.dim_x = std::min<long>(n, 64);
    const double secs =
        time_best_of([&] { driver.run(stencil, steps, cfg, engine); }, 1, 0.0);
    // stats accumulate across reps; normalize by recorded time steps.
    const auto& s = driver.stats();
    t.add_row({Table::fmt(dim_t, 0), Table::fmt(static_cast<double>(driver.halo_planes()), 0),
               Table::fmt(s.messages_per_step(), 2),
               Table::fmt(s.bytes_per_step() / 1024.0, 0),
               Table::fmt(double(n) * n * n * steps / secs / 1e6, 0)});
  }
  t.print();
  std::puts(
      "\nexpected: bytes/step constant (thicker halo amortized over dim_t steps);\n"
      "messages/step fall by dim_t — the latency-amortization benefit that makes\n"
      "temporal blocking attractive for distributed-memory stencils.");
  return 0;
}
