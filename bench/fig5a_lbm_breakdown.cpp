// Figure 5(a): cumulative optimization breakdown for LBM on CPU (SP):
// scalar parallel -> +SIMD -> +spatial -> 4D -> 3.5D -> +ILP.
//
// Reported per bar: wall-clock on this host (scalar bar really runs the
// scalar backend of the same kernel), the Core i7 roofline model, and the
// paper's measured bar.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/perf_model.h"
#include "core/planner.h"
#include "machine/kernel_sig.h"

using namespace s35;
using machine::Precision;

int main(int argc, char** argv) {
  std::puts("== Figure 5(a): LBM on CPU, SP optimization breakdown ==");
  telemetry::JsonReporter reporter("fig5a_lbm_breakdown", argc, argv);
  bench::want_records(reporter);
  core::Engine35 engine(bench::bench_threads());
  const long n = env_int("S35_FULL", 0) ? 256 : 96;
  const int steps = n >= 128 ? 3 : 6;
  std::printf("grid %ld^3, %d threads\n\n", n, engine.num_threads());

  const auto plan = core::plan(machine::core_i7(), machine::lbm_d3q19(),
                               Precision::kSingle, {.round_multiple = 4});
  lbm::SweepConfig cfg35;
  cfg35.dim_t = plan.dim_t;
  cfg35.dim_x = std::min<long>(plan.dim_x, n);
  lbm::SweepConfig cfg4;
  cfg4.dim_t = plan.dim_t;
  cfg4.dim_x = std::min<long>(32, n);  // ~cube from the same budget

  Table t({"bar", "measured MLUPS", "model i7 MLUPS", "paper"});

  // Bar 1: parallel scalar (no SIMD) naive.
  {
    lbm::Geometry geom(n, n, n);
    geom.set_box_walls();
    geom.set_lid();
    geom.finalize();
    lbm::BgkParams<float> prm;
    prm.omega = 1.2f;
    prm.u_wall[0] = 0.05f;
    lbm::LatticePair<float> pair(n, n, n);
    pair.src().init_equilibrium();
    const double secs = time_best_of(
        [&] {
          lbm::run_lbm<float, simd::ScalarTag>(lbm::Variant::kNaive, geom, prm, pair,
                                               steps, {}, engine);
        },
        bench::bench_reps(), 0.05);
    t.add_row({"scalar naive", Table::fmt(double(n) * n * n * steps / secs / 1e6, 1),
               Table::fmt(core::predict_lbm_cpu(core::CpuScheme::kScalarNaive,
                                                Precision::kSingle, n)
                              .mups,
                          0),
               "52"});
  }

  const struct {
    const char* name;
    lbm::Variant v;
    lbm::SweepConfig cfg;
    core::CpuScheme model;
    const char* paper;
  } bars[] = {
      {"+ simd", lbm::Variant::kNaive, {}, core::CpuScheme::kNaive, "87"},
      {"+ spatial", lbm::Variant::kNaive, {}, core::CpuScheme::kSpatialOnly,
       "87 (no reuse)"},
      {"4d blocking", lbm::Variant::kBlocked4D, cfg4, core::CpuScheme::kBlocked4D,
       "94 (+8%)"},
      {"3.5d blocking", lbm::Variant::kBlocked35D, cfg35, core::CpuScheme::kBlocked35D,
       "157"},
      {"+ ilp", lbm::Variant::kBlocked35D, cfg35, core::CpuScheme::kBlocked35DIlp,
       "171"},
  };
  for (const auto& bar : bars) {
    const auto m = bench::measure_lbm<float>(bar.v, n, steps, bar.cfg, engine);
    const double model = core::predict_lbm_cpu(bar.model, Precision::kSingle, n).mups;
    t.add_row({bar.name, Table::fmt(m.mups, 1), Table::fmt(model, 0), bar.paper});
    auto rec = bench::lbm_record<float>(bar.v, Precision::kSingle, n, steps, bar.cfg,
                                        engine.num_threads(), m);
    rec.variant = bar.name;  // disambiguate the cumulative bars
    rec.extra["model_mups"] = model;
    reporter.add(rec);
  }
  t.print();
  std::puts(
      "\nshape checks (paper): SIMD alone <2X (hits the bandwidth wall); spatial adds\n"
      "nothing; 4D gains only ~8% (kappa ~2X); 3.5D nearly doubles; ILP adds ~9%.\n"
      "note: the '+ ilp' bar shares the 3.5D implementation here — the unroll/software\n"
      "pipelining delta is represented by the model column.");
  return 0;
}
