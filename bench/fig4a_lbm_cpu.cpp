// Figure 4(a): D3Q19 LBM on CPU — no-blocking vs temporal-only vs 3.5D,
// SP and DP, across grid sizes. Temporal-only helps exactly when the
// whole-plane buffer fits the cache budget (the paper's 64^3 bars);
// 3.5D works at every size.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/perf_model.h"
#include "core/planner.h"
#include "machine/kernel_sig.h"

using namespace s35;
using machine::Precision;

namespace {

template <typename T>
void run_precision(Precision prec, core::Engine35& engine,
                   telemetry::JsonReporter& reporter) {
  std::printf("\n-- %s --\n", machine::to_string(prec));
  Table t({"grid", "variant", "measured MLUPS", "model i7 MLUPS", "paper"});

  const machine::Descriptor i7 = machine::core_i7();
  const auto plan = core::plan(i7, machine::lbm_d3q19(), prec, {.round_multiple = 4});

  for (long n : bench::lbm_grids()) {
    const int steps = n >= 128 ? 3 : 6;

    lbm::SweepConfig cfg35;
    cfg35.dim_t = plan.dim_t;
    cfg35.dim_x = std::min<long>(plan.dim_x, n);
    if (cfg35.dim_x <= 2 * plan.dim_t) cfg35.dim_x = n;

    lbm::SweepConfig cfg_t;
    cfg_t.dim_t = plan.dim_t;

    const struct {
      lbm::Variant v;
      lbm::SweepConfig cfg;
      core::CpuScheme model;
      const char* paper;
    } rows[] = {
        {lbm::Variant::kNaive, {}, core::CpuScheme::kNaive,
         prec == Precision::kSingle ? "~87 (256^3, bw-bound)" : "~44"},
        {lbm::Variant::kTemporalOnly, cfg_t, core::CpuScheme::kTemporalOnly,
         "gains only at 64^3"},
        {lbm::Variant::kBlocked35D, cfg35, core::CpuScheme::kBlocked35D,
         prec == Precision::kSingle ? "~171 (256^3, 2.1X)" : "~80 (2.08X)"},
    };

    for (const auto& row : rows) {
      const auto m = bench::measure_lbm<T>(row.v, n, steps, row.cfg, engine);
      const double model = core::predict_lbm_cpu(row.model, prec, n).mups;
      t.add_row({std::to_string(n) + "^3", lbm::to_string(row.v),
                 Table::fmt(m.mups, 1), Table::fmt(model, 0), row.paper});
      auto rec = bench::lbm_record<T>(row.v, prec, n, steps, row.cfg,
                                      engine.num_threads(), m);
      rec.extra["model_mups"] = model;
      reporter.add(rec);
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("== Figure 4(a): D3Q19 LBM, CPU ==");
  telemetry::JsonReporter reporter("fig4a_lbm_cpu", argc, argv);
  bench::want_records(reporter);
  core::Engine35 engine(bench::bench_threads());
  std::printf("host threads: %d (S35_THREADS), S35_FULL=1 for paper-scale grids\n",
              engine.num_threads());
  run_precision<float>(Precision::kSingle, engine, reporter);
  run_precision<double>(Precision::kDouble, engine, reporter);
  std::puts(
      "\nshape checks (paper): naive is bandwidth bound; temporal-only matches 3.5D\n"
      "only on small grids; 3.5D reaches ~2.1X SP / ~2X DP over naive; DP ~= SP/2.");
  return 0;
}
