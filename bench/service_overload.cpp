// Service overload soak: does the tenancy plane keep a well-behaved tenant
// whole while an adversarial one floods the same socket?
//
// One resident backend — the in-process JobService, or with
// S35_SERVE_WORKERS > 0 the supervised worker-process plane — is served
// over the poll-multiplexed unix socket. Two tenants attack it with
// hundreds of short-lived NDJSON connections (one connection per job, like
// real clients behind a pool):
//
//   good   — closed-loop: submit, wait for the terminal result, verify the
//            CRC, only then submit the next job. On a structured rejection
//            it obeys the server's retry_after_ms hint (floored by
//            fault::retry's jittered client backoff) and tries again.
//   noisy  — open-loop flood, S35_OVERLOAD_NOISY_MULT jobs per good job
//            (default 10:1), fire-and-forget: submits as fast as the
//            socket accepts and never waits. Rejections are counted and
//            dropped — exactly what a misbehaving client would see.
//
// With workers > 0 and S35_SOAK_KILL_MS > 0, a killer thread SIGKILLs a
// random worker process on that period while the flood is in progress.
//
// Hard gates (any miss is a nonzero exit, so the bench harness fails):
//   * every good-tenant job completes exactly once, bit-exact against an
//     independent in-process reference CRC;
//   * terminal conservation on the server: submitted == completed +
//     failed + cancelled + expired, with failed == 0;
//   * fairness: at the moment the good tenant finishes, its share of all
//     completed jobs is at least S35_OVERLOAD_SHARE_MIN (default 0.4 —
//     within 20% of the 0.5 entitlement of two equal-weight tenants under
//     deficit-round-robin);
//   * good-tenant p99 end-to-end latency <= S35_OVERLOAD_P99_MS
//     (default 60000).
//
// Env knobs: S35_OVERLOAD_GOOD_JOBS (default 24), S35_OVERLOAD_NOISY_MULT
// (default 10), S35_OVERLOAD_N (default 40), S35_OVERLOAD_STEPS (default
// 4), S35_OVERLOAD_RATE / S35_OVERLOAD_BURST (token bucket, default 200 /
// 200 cost units), S35_OVERLOAD_SHARE (queue share, default 0.6),
// S35_OVERLOAD_SHARE_MIN, S35_OVERLOAD_P99_MS, S35_SERVE_WORKERS,
// S35_SOAK_KILL_MS, S35_SOAK_SEED, S35_THREADS.
#include <cstdio>

#include "bench_util.h"

#if defined(__unix__)

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/retry.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/service.h"
#include "service/supervisor.h"
#include "service/tenancy.h"

using namespace s35;

namespace {

double pct(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t at =
      std::min(sorted.size() - 1, static_cast<std::size_t>(q * sorted.size()));
  return sorted[at];
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int i = 0; i < 200; ++i) {  // server may still be binding
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  return -1;
}

bool send_line(int fd, const std::string& line) {
  const std::string msg = line + "\n";
  return ::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(msg.size());
}

// Poll-driven line read: wakes the instant bytes arrive, so client-side
// latency reflects the server, not a sleep granularity.
std::string recv_line(int fd, int timeout_ms) {
  std::string acc;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  char buf[1024];
  for (;;) {
    const std::size_t nl = acc.find('\n');
    if (nl != std::string::npos) return acc.substr(0, nl);
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
    if (pr == 0) break;
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0)
      acc.append(buf, static_cast<std::size_t>(n));
    else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR))
      break;
  }
  return acc;
}

// Worker processes forked by the Supervisor (see service_throughput.cpp).
std::vector<long> child_pids() {
  std::vector<long> pids;
  DIR* d = ::opendir("/proc/self/task");
  if (!d) return pids;
  while (dirent* e = ::readdir(d)) {
    if (e->d_name[0] == '.') continue;
    const std::string path =
        std::string("/proc/self/task/") + e->d_name + "/children";
    FILE* f = std::fopen(path.c_str(), "r");
    if (!f) continue;
    long pid = 0;
    while (std::fscanf(f, "%ld", &pid) == 1) pids.push_back(pid);
    std::fclose(f);
  }
  ::closedir(d);
  return pids;
}

std::string submit_line(const service::JobSpec& spec, const std::string& tenant) {
  return "{\"op\":\"submit\",\"kernel\":\"7pt\",\"n\":" + std::to_string(spec.nx) +
         ",\"steps\":" + std::to_string(spec.steps) +
         ",\"seed\":" + std::to_string(spec.seed) + ",\"tenant\":\"" + tenant +
         "\"}";
}

// Per-tenant completion counters pulled from a live backend snapshot.
void tenant_counts(const service::ServiceStats& s, const std::string& name,
                   std::uint64_t* completed, std::uint64_t* rejected) {
  for (const auto& t : s.tenants) {
    if (t.name != name) continue;
    *completed = t.completed;
    *rejected = t.rejected;
    return;
  }
  *completed = 0;
  *rejected = 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("== service overload: adversarial flood vs per-tenant admission ==");
  telemetry::JsonReporter reporter("service_overload", argc, argv);
  bench::want_records(reporter);

  const int good_jobs = static_cast<int>(env_int("S35_OVERLOAD_GOOD_JOBS", 24));
  const int noisy_mult = static_cast<int>(env_int("S35_OVERLOAD_NOISY_MULT", 10));
  const int noisy_jobs = good_jobs * noisy_mult;
  const long n = env_int("S35_OVERLOAD_N", 40);
  const int steps = static_cast<int>(env_int("S35_OVERLOAD_STEPS", 4));
  const int threads = bench::bench_threads();
  const int workers = static_cast<int>(env_int("S35_SERVE_WORKERS", 0));
  const int kill_ms = static_cast<int>(env_int("S35_SOAK_KILL_MS", 0));
  const double share_min = env_double("S35_OVERLOAD_SHARE_MIN", 0.4);
  const double p99_gate_ms = env_double("S35_OVERLOAD_P99_MS", 60'000.0);
  const machine::Descriptor mach = machine::host();

  service::JobSpec spec;
  spec.nx = n;
  spec.steps = steps;
  spec.seed = 7;

  // Independent reference: one in-process job, no tenancy, no supervisor.
  // Every completed job in the soak must reproduce this CRC exactly.
  std::uint32_t want_crc = 0;
  {
    service::ServiceOptions ref;
    ref.threads = threads;
    ref.mach = mach;
    service::JobService svc(ref);
    const auto id = svc.submit(spec);
    const auto done = id.ok() ? svc.wait(id.value()) : std::nullopt;
    if (!done || done->state != service::JobState::kDone) {
      std::puts("FAIL: reference job did not complete");
      return 1;
    }
    want_crc = done->result.crc;
  }
  char want_hex[16];
  std::snprintf(want_hex, sizeof want_hex, "%08x", want_crc);

  // Tenancy plane: generous token bucket (the flood must mostly get *in*
  // so DRR has contention to arbitrate), a queue-share cap so neither
  // tenant can monopolize slots, and quarantine off — random SIGKILLs are
  // not the tenants' fault.
  service::TenancyOptions tenancy;
  tenancy.rate = env_double("S35_OVERLOAD_RATE", 200.0);
  tenancy.burst = env_double("S35_OVERLOAD_BURST", 200.0);
  tenancy.queue_share = env_double("S35_OVERLOAD_SHARE", 0.6);

  char ckpt_dir[] = "/tmp/s35-overload-XXXXXX";
  std::unique_ptr<service::JobBackend> backend;
  if (workers > 0) {
    if (!::mkdtemp(ckpt_dir)) {
      std::puts("FAIL: mkdtemp for checkpoint dir");
      return 2;
    }
    service::SupervisorOptions sup;
    sup.workers = workers;
    sup.beat_ms = 20;
    sup.hang_ms = 10'000;
    sup.max_restarts = 1 << 20;  // the soak kills on purpose; absorb every one
    sup.max_job_attempts = 1 << 20;
    sup.checkpoint_dir = ckpt_dir;
    sup.checkpoint_every = 1;
    sup.queue_capacity = static_cast<std::size_t>(good_jobs + noisy_jobs) + 16;
    sup.service.threads = threads;
    sup.service.mach = mach;
    sup.tenancy = tenancy;
    backend = std::make_unique<service::Supervisor>(sup);
  } else {
    service::ServiceOptions o;
    o.threads = threads;
    o.mach = mach;
    o.queue_capacity = static_cast<std::size_t>(good_jobs + noisy_jobs) + 16;
    o.tenancy = tenancy;
    backend = std::make_unique<service::JobService>(o);
  }

  // Warm-up (untimed): populate plan caches so the flood measures
  // scheduling, not autotuning.
  {
    const auto id = backend->submit(spec);
    const auto done = id.ok() ? backend->wait(id.value(), 120'000) : std::nullopt;
    if (!done || done->state != service::JobState::kDone ||
        done->result.crc != want_crc) {
      std::puts("FAIL: warm-up job did not complete bit-exact");
      return 1;
    }
  }

  const std::string sock =
      "/tmp/s35-overload-" + std::to_string(::getpid()) + ".sock";
  std::atomic<bool> stop_serve{false};
  std::thread server(
      [&] { service::serve_unix(*backend, sock, &stop_serve); });

  std::atomic<bool> stop_kill{false};
  std::atomic<std::uint64_t> kills_sent{0};
  std::thread killer([&] {
    std::uint64_t rng = static_cast<std::uint64_t>(env_int("S35_SOAK_SEED", 42)) | 1;
    while (workers > 0 && kill_ms > 0 && !stop_kill.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_ms));
      if (stop_kill.load()) break;
      const std::vector<long> pids = child_pids();
      if (pids.empty()) continue;
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      const long victim = pids[rng % pids.size()];
      if (::kill(static_cast<pid_t>(victim), SIGKILL) == 0)
        kills_sent.fetch_add(1);
    }
  });

  // ---- noisy tenant: open-loop flood, one connection per job ------------
  std::atomic<int> noisy_next{0};
  std::atomic<std::uint64_t> noisy_sent{0}, noisy_admitted{0}, noisy_rejected{0};
  std::atomic<bool> noisy_stop{false};
  const int noisy_threads = static_cast<int>(env_int("S35_OVERLOAD_NOISY_CLIENTS", 8));
  std::vector<std::thread> flood;
  for (int c = 0; c < noisy_threads; ++c) {
    flood.emplace_back([&] {
      while (!noisy_stop.load()) {
        if (noisy_next.fetch_add(1) >= noisy_jobs) break;
        const int fd = connect_unix(sock);
        if (fd < 0) continue;
        noisy_sent.fetch_add(1);
        if (send_line(fd, submit_line(spec, "noisy"))) {
          const std::string resp = recv_line(fd, 30'000);
          if (resp.find("\"ok\":true") != std::string::npos)
            noisy_admitted.fetch_add(1);
          else
            noisy_rejected.fetch_add(1);
        }
        ::close(fd);  // fire-and-forget: never waits for the result
      }
    });
  }

  // ---- good tenant: submit the whole batch (obeying rejection hints),
  // then collect every terminal. A persistent backlog is what DRR
  // arbitrates; each op still uses its own short-lived connection.
  const int good_threads = static_cast<int>(env_int("S35_OVERLOAD_GOOD_CLIENTS", 2));
  std::atomic<int> good_next{0};
  std::atomic<std::uint64_t> good_retries{0};
  std::mutex good_mu;
  std::vector<double> good_lat_ms;
  std::string good_err;
  const fault::RetryPolicy client_backoff{
      .max_retries = 12,
      .base_delay = std::chrono::microseconds(10'000),
      .multiplier = 2.0,
      .max_delay = std::chrono::microseconds(1'000'000)};
  // Fairness is sampled server-side: the instant the good tenant's last
  // job completes on the backend, record both tenants' completion counts.
  // Client-observed completion lags by a wait round-trip, during which the
  // flood keeps draining and would understate the good share.
  std::atomic<bool> sampler_stop{false};
  std::uint64_t fair_good = 0, fair_noisy = 0;
  std::thread sampler([&] {
    while (!sampler_stop.load()) {
      const service::ServiceStats s = backend->stats();
      std::uint64_t g = 0, gr = 0, nd = 0, nr = 0;
      tenant_counts(s, "good", &g, &gr);
      tenant_counts(s, "noisy", &nd, &nr);
      fair_good = g;
      fair_noisy = nd;
      if (g >= static_cast<std::uint64_t>(good_jobs)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Timer flood_timer;
  std::vector<std::thread> good;
  for (int c = 0; c < good_threads; ++c) {
    good.emplace_back([&, c] {
      struct Pending {
        std::int64_t id;
        double submit_s;
      };
      std::vector<Pending> pending;
      std::string fail;
      while (fail.empty()) {
        if (good_next.fetch_add(1) >= good_jobs) break;
        bool admitted = false;
        for (int attempt = 0; attempt < 200 && !admitted; ++attempt) {
          const int fd = connect_unix(sock);
          if (fd < 0) {
            fail = "good client could not connect";
            break;
          }
          const double t0 = flood_timer.seconds();
          std::int64_t id = 0;
          if (!send_line(fd, submit_line(spec, "good"))) {
            ::close(fd);
            continue;
          }
          const std::string resp = recv_line(fd, 30'000);
          ::close(fd);
          if (resp.find("\"ok\":true") != std::string::npos &&
              service::json::get_int(resp, "id", &id) && id > 0) {
            pending.push_back({id, t0});
            admitted = true;
          } else {
            // Structured rejection: obey the server's hint, floored by the
            // client's own jittered backoff schedule.
            std::int64_t hint_ms = 0;
            (void)service::json::get_int(resp, "retry_after_ms", &hint_ms);
            const auto jitter = fault::backoff_delay_jittered(
                client_backoff, std::min(attempt, client_backoff.max_retries),
                0x600Dull + static_cast<std::uint64_t>(c));
            const std::int64_t sleep_ms =
                std::max<std::int64_t>(hint_ms, jitter.count() / 1000);
            good_retries.fetch_add(1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::min<std::int64_t>(sleep_ms, 2'000)));
          }
        }
        if (fail.empty() && !admitted) fail = "good job never admitted";
      }
      std::vector<double> lat;
      for (const Pending& p : pending) {
        if (!fail.empty()) break;
        const int fd = connect_unix(sock);
        if (fd < 0) {
          fail = "good client could not connect for wait";
          break;
        }
        std::string res;
        if (send_line(fd, "{\"op\":\"wait\",\"id\":" + std::to_string(p.id) +
                              ",\"timeout_ms\":120000}"))
          res = recv_line(fd, 125'000);
        ::close(fd);
        std::string state;
        std::string crc_hex;
        if (service::json::get_string(res, "state", &state) && state == "done" &&
            service::json::get_string(res, "crc", &crc_hex) &&
            crc_hex == want_hex) {
          lat.push_back((flood_timer.seconds() - p.submit_s) * 1e3);
        } else {
          fail = "good job " + std::to_string(p.id) +
                 " did not finish bit-exact: " + res;
        }
      }
      std::lock_guard<std::mutex> lk(good_mu);
      if (!fail.empty() && good_err.empty()) good_err = fail;
      good_lat_ms.insert(good_lat_ms.end(), lat.begin(), lat.end());
    });
  }
  for (auto& th : good) th.join();
  const double flood_s = flood_timer.seconds();
  sampler_stop.store(true);
  sampler.join();

  // Under DRR both tenants drained at their weight, so at the sampled
  // good-finish instant the good share must be near its 0.5 entitlement
  // even though noisy submitted 10x the jobs.
  const std::uint64_t good_done_mid = fair_good;
  const std::uint64_t noisy_done_mid = fair_noisy;
  const std::uint64_t done_mid = good_done_mid + noisy_done_mid;
  const double good_share =
      done_mid > 0 ? static_cast<double>(good_done_mid) / done_mid : 0.0;

  noisy_stop.store(true);
  for (auto& th : flood) th.join();
  stop_kill.store(true);
  killer.join();

  // Drain every admitted job, then stop the transport and the plane.
  const bool drained = backend->drain(300'000);
  stop_serve.store(true);
  server.join();
  const service::ServiceStats fin = backend->stats();
  backend->shutdown();
  backend.reset();
  std::remove(sock.c_str());
  if (workers > 0) {  // best-effort checkpoint cleanup
    if (DIR* d = ::opendir(ckpt_dir)) {
      while (dirent* e = ::readdir(d)) {
        if (e->d_name[0] == '.') continue;
        ::unlink((std::string(ckpt_dir) + "/" + e->d_name).c_str());
      }
      ::closedir(d);
      ::rmdir(ckpt_dir);
    }
  }

  std::sort(good_lat_ms.begin(), good_lat_ms.end());
  const double p50 = pct(good_lat_ms, 0.50);
  const double p99 = pct(good_lat_ms, 0.99);

  std::printf(
      "good: %zu/%d jobs, %llu retries, p50 %.1f ms, p99 %.1f ms\n"
      "noisy: %llu sent, %llu admitted, %llu rejected\n"
      "fair share at good-finish: %.3f (gate >= %.3f; %llu good vs %llu noisy "
      "done)\n",
      good_lat_ms.size(), good_jobs,
      static_cast<unsigned long long>(good_retries.load()), p50, p99,
      static_cast<unsigned long long>(noisy_sent.load()),
      static_cast<unsigned long long>(noisy_admitted.load()),
      static_cast<unsigned long long>(noisy_rejected.load()), good_share,
      share_min, static_cast<unsigned long long>(good_done_mid),
      static_cast<unsigned long long>(noisy_done_mid));
  if (workers > 0)
    std::printf("plane: %llu kills sent, %llu worker deaths, %llu failovers\n",
                static_cast<unsigned long long>(kills_sent.load()),
                static_cast<unsigned long long>(fin.worker_deaths),
                static_cast<unsigned long long>(fin.failovers));

  telemetry::BenchRecord rec;
  rec.kernel = "7pt";
  rec.variant = workers > 0 ? "service/overload-supervised" : "service/overload";
  rec.nx = rec.ny = rec.nz = n;
  rec.steps = steps;
  rec.threads = threads;
  rec.seconds = flood_s;
  rec.mups = static_cast<double>(n) * n * n * steps *
             static_cast<double>(good_lat_ms.size() + noisy_done_mid) / flood_s /
             1e6;
  rec.extra["good_jobs"] = static_cast<double>(good_lat_ms.size());
  rec.extra["good_retries"] = static_cast<double>(good_retries.load());
  rec.extra["good_p50_ms"] = p50;
  rec.extra["good_p99_ms"] = p99;
  rec.extra["good_share"] = good_share;
  rec.extra["good_completed"] = static_cast<double>(good_done_mid);
  std::uint64_t good_done_fin = 0, good_rej_fin = 0;
  std::uint64_t noisy_done_fin = 0, noisy_rej_fin = 0;
  tenant_counts(fin, "good", &good_done_fin, &good_rej_fin);
  tenant_counts(fin, "noisy", &noisy_done_fin, &noisy_rej_fin);
  rec.extra["good_rejected"] = static_cast<double>(good_rej_fin);
  rec.extra["noisy_sent"] = static_cast<double>(noisy_sent.load());
  rec.extra["noisy_admitted"] = static_cast<double>(noisy_admitted.load());
  rec.extra["noisy_rejected"] = static_cast<double>(noisy_rej_fin);
  rec.extra["noisy_completed"] = static_cast<double>(noisy_done_fin);
  rec.extra["shed_expired"] = static_cast<double>(fin.shed_expired);
  rec.extra["quarantine_trips"] = static_cast<double>(fin.quarantine_trips);
  rec.extra["workers"] = static_cast<double>(workers);
  rec.extra["kills_sent"] = static_cast<double>(kills_sent.load());
  rec.extra["worker_deaths"] = static_cast<double>(fin.worker_deaths);
  rec.extra["failovers"] = static_cast<double>(fin.failovers);
  bench::attach_roofline(rec, machine::Precision::kSingle);
  reporter.add(rec);

  // ---- hard gates -------------------------------------------------------
  if (!good_err.empty()) {
    std::printf("FAIL: %s\n", good_err.c_str());
    return 1;
  }
  if (good_lat_ms.size() != static_cast<std::size_t>(good_jobs)) {
    std::printf("FAIL: good tenant completed %zu/%d jobs\n", good_lat_ms.size(),
                good_jobs);
    return 1;
  }
  if (!drained) {
    std::puts("FAIL: backend did not drain admitted jobs");
    return 1;
  }
  if (fin.failed != 0) {
    std::printf("FAIL: %llu jobs failed\n",
                static_cast<unsigned long long>(fin.failed));
    return 1;
  }
  if (fin.completed + fin.failed + fin.cancelled + fin.expired != fin.submitted) {
    std::printf("FAIL: job conservation: %llu submitted vs %llu terminal\n",
                static_cast<unsigned long long>(fin.submitted),
                static_cast<unsigned long long>(fin.completed + fin.failed +
                                                fin.cancelled + fin.expired));
    return 1;
  }
  if (good_share < share_min) {
    std::printf("FAIL: good tenant share %.3f below %.3f under flood\n",
                good_share, share_min);
    return 1;
  }
  if (p99 > p99_gate_ms) {
    std::printf("FAIL: good p99 %.1f ms above gate %.1f ms\n", p99, p99_gate_ms);
    return 1;
  }
  std::puts(
      "overload soak: good tenant whole, every job bit-exact, fair share "
      "held under a 10:1 flood.");
  return 0;
}

#else  // !__unix__

int main(int argc, char** argv) {
  telemetry::JsonReporter reporter("service_overload", argc, argv);
  std::puts("service_overload: unix sockets unavailable on this platform; "
            "skipped.");
  return 0;
}

#endif
