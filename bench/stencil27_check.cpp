// Section IV-C, 27-point stencil: "The 27-point stencil has low bytes/op
// that is sufficient to make it compute bound on both architectures" and
// "spatial blocking techniques are sufficient to make 27-point stencil
// compute bound" — temporal blocking buys nothing and only adds ghost
// overhead. This bench verifies the classification and measures the
// variants.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"
#include "machine/kernel_sig.h"

using namespace s35;
using machine::Precision;

namespace {

template <typename T>
double run27(stencil::Variant v, long n, int steps, const stencil::SweepConfig& cfg,
             core::Engine35& engine) {
  const auto stencil = stencil::default_stencil27<T>();
  grid::GridPair<T> pair(n, n, n);
  pair.src().fill_random(3, T(-1), T(1));
  const double secs = time_best_of(
      [&] { stencil::run_sweep(v, stencil, pair, steps, cfg, engine); },
      bench::bench_reps(), 0.05);
  return static_cast<double>(n) * n * n * steps / secs / 1e6;
}

}  // namespace

int main() {
  std::puts("== 27-point stencil: compute-bound without temporal blocking ==");

  const auto k = machine::twenty_seven_point();
  Table cls({"platform", "Gamma SP", "gamma 27pt SP", "classification"});
  for (const auto& d : {machine::core_i7(), machine::gtx285()}) {
    cls.add_row({d.name, Table::fmt(d.bytes_per_op(Precision::kSingle), 2),
                 Table::fmt(k.gamma(Precision::kSingle), 2),
                 k.gamma(Precision::kSingle) <= d.bytes_per_op(Precision::kSingle)
                     ? "compute-bound"
                     : "bandwidth-bound"});
  }
  cls.print();
  std::puts("paper: gamma = 0.14 SP / 0.28 DP — compute bound on both platforms.\n");

  const long n = env_int("S35_FULL", 0) ? 256 : 128;
  const int steps = 4;
  core::Engine35 engine(bench::bench_threads());
  std::printf("measured on host, %ld^3 (SP):\n", n);

  Table t({"variant", "Mupd/s", "expected"});
  t.add_row({"naive", Table::fmt(run27<float>(stencil::Variant::kNaive, n, steps, {},
                                              engine), 0),
             "already compute bound"});
  stencil::SweepConfig sp;
  sp.dim_x = std::min<long>(n, 128);
  t.add_row({"2.5d spatial",
             Table::fmt(run27<float>(stencil::Variant::kSpatial25D, n, steps, sp, engine), 0),
             "~= naive"});
  stencil::SweepConfig b35;
  b35.dim_t = 2;
  b35.dim_x = std::min<long>(n, 96);
  t.add_row({"3.5d dim_t=2",
             Table::fmt(run27<float>(stencil::Variant::kBlocked35D, n, steps, b35, engine), 0),
             "<= naive: ghost ops, no bw to win back"});
  t.print();
  return 0;
}
