// Ablation of the scheduling design choices (Section V-C/V-D plus the
// schedule-family extensions, docs/SCHEDULES.md):
//
//   (1) parallel rounds (2R+2 planes/instance, one barrier per outer-z)
//       vs the serialized strawman (2R+1 planes, barrier per step);
//   (2) streaming vs regular external stores;
//   (3) schedule family x temporal depth: paper 3.5D tiles vs deep 3.5D
//       (row-pair fused, dim_t past the eq. 3 minimum) vs whole-plane
//       diamond (kappa = 1), each at dim_t in {2, 4, 8};
//   (4) the paper-only planner pick vs the family-aware pick — the
//       regression anchor for the family-aware planning win.
//
// Emits one s35.bench.v1 record per (family, dim_t) cell and per planner
// pick; the family is encoded both in the variant string ("3.5d-paper",
// "3.5d-deep", "3.5d-diamond" — record_key has no family field of its own)
// and numerically as extra["schedule_family"]. On smoke grids (n <= 64)
// each record also carries the memsim replay of the same family schedule,
// which scripts/bench_harness.py gates against the counted traffic.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"
#include "machine/kernel_sig.h"
#include "memsim/traffic.h"

using namespace s35;
using machine::Precision;

namespace {

double run(long n, int steps, const stencil::SweepConfig& cfg, core::Engine35& engine) {
  return bench::measure_stencil7<float>(stencil::Variant::kBlocked35D, n, steps, cfg,
                                        engine)
      .mups;
}

// Cross-validates the engine's counted external traffic against the cache
// simulator for the exact family schedule (paper tiles, deep tiles, diamond
// mountains). n <= 64 keeps every family's working set — including the
// diamond's min(2W, nz) whole-plane ring — inside the 1 MB simulated LLC
// while the grid pair itself does not fit, the same regime the measured
// engine streams in. The harness gates measured-vs-simulated agreement.
void attach_memsim_validation(telemetry::BenchRecord& rec, long n, int steps,
                              const stencil::SweepConfig& cfg) {
  if (n > 64 || rec.bytes_per_update_measured <= 0.0) return;
  // Replay regime: at dim_t > 4 (and for the diamond's min(2W, nz)
  // whole-plane ring at any depth) the schedule's working set approaches
  // the simulated LLC, so the replay measures capacity misses rather than
  // the schedule — the diamond/deep memsim cross-validation lives in
  // tests/test_schedule_families.cpp against the analytic model instead.
  // Here the strict bytes-vs-baseline gate still pins every family's
  // counted traffic (deterministic engine counters).
  if (cfg.family == core::ScheduleFamily::kDiamond || cfg.dim_t > 4) return;
  memsim::TraceConfig tc;
  tc.nx = tc.ny = tc.nz = n;
  tc.steps = steps;
  tc.elem_bytes = sizeof(float);
  tc.radius = 1;
  tc.streaming_stores = cfg.streaming_stores;
  tc.dim_t = cfg.dim_t;
  tc.family = cfg.family;
  tc.dim_x = cfg.dim_x > 0 ? std::min(cfg.dim_x, n) : n;
  tc.dim_y = cfg.dim_y > 0 ? std::min(cfg.dim_y, n) : tc.dim_x;
  tc.dim_z = cfg.dim_z;
  tc.cache.size_bytes = 1u << 20;
  const double sim_bpu =
      memsim::trace_stencil(memsim::Scheme::kBlocked35D, tc).bytes_per_update();
  rec.roofline["memsim_bytes_per_update"] = sim_bpu;
  rec.roofline["memsim_vs_measured"] =
      sim_bpu > 0.0 ? rec.bytes_per_update_measured / sim_bpu : 0.0;
}

// SweepConfig for one (family, dim_t) ablation cell: paper/deep keep the
// XY tile, the diamond always runs whole-plane with the minimal mountain
// width (dim_z = 0, the planner's choice).
stencil::SweepConfig family_cfg(core::ScheduleFamily fam, int dim_t, long n) {
  stencil::SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.family = fam;
  if (fam == core::ScheduleFamily::kDiamond) {
    cfg.dim_x = cfg.dim_y = n;
  } else {
    cfg.dim_x = cfg.dim_y = std::min<long>(n, 96);
  }
  return cfg;
}

// Maps a planner BlockPlan onto a SweepConfig (dim_x = 0 means whole-plane).
stencil::SweepConfig plan_cfg(const core::BlockPlan& plan, long n) {
  stencil::SweepConfig cfg;
  cfg.dim_t = plan.dim_t;
  cfg.dim_x = plan.dim_x > 0 ? std::min(plan.dim_x, n) : n;
  cfg.dim_y = plan.dim_y > 0 ? std::min(plan.dim_y, n) : cfg.dim_x;
  cfg.dim_z = plan.dim_z;
  cfg.family = plan.family;
  if (cfg.dim_x <= 2 * plan.dim_t) cfg.dim_x = cfg.dim_y = n;
  return cfg;
}

telemetry::BenchRecord family_record(const char* variant_suffix,
                                     const stencil::SweepConfig& cfg, long n,
                                     int steps, int threads,
                                     const bench::Measurement& m) {
  auto rec = bench::stencil_record<float>("stencil7", stencil::Variant::kBlocked35D,
                                          Precision::kSingle, n, steps, cfg, threads, m);
  rec.variant = std::string("3.5d-") + variant_suffix;
  rec.extra["schedule_family"] = static_cast<double>(cfg.family);
  attach_memsim_validation(rec, n, steps, cfg);
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const long n =
      bench::env_grid_list("S35_GRIDS", {env_int("S35_FULL", 0) ? 256L : 128L})
          .front();
  const int steps = 8;
  const int threads = bench::bench_threads();
  telemetry::JsonReporter reporter("ablation_schedule", argc, argv);
  bench::want_records(reporter);
  std::printf("== Scheduling ablations: 3.5D 7-pt SP, %ld^3, %d threads ==\n\n", n,
              threads);

  stencil::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = std::min<long>(n, 96);

  {
    Table t({"mode", "planes/instance", "barriers/outer-z", "Mupd/s"});
    for (int thr : {threads, 4}) {
      core::Engine35 engine(thr);
      auto par = cfg;
      const double mp = run(n, steps, par, engine);
      auto ser = cfg;
      ser.serialized = true;
      const double ms = run(n, steps, ser, engine);
      char label_p[48], label_s[48];
      std::snprintf(label_p, sizeof(label_p), "parallel rounds (%d thr)", thr);
      std::snprintf(label_s, sizeof(label_s), "serialized steps (%d thr)", thr);
      t.add_row({label_p, "2R+2 = 4", "1", Table::fmt(mp, 0)});
      t.add_row({label_s, "2R+1 = 3", "dim_t = 3", Table::fmt(ms, 0)});
    }
    t.print();
    std::puts(
        "paper: the extra sub-plane multiplies available parallelism by dim_t and\n"
        "cuts barriers to one per outer-z step (Section V-C).\n");
  }

  {
    Table t({"external stores", "Mupd/s"});
    core::Engine35 engine(threads);
    auto reg = cfg;
    t.add_row({"write-allocate", Table::fmt(run(n, steps, reg, engine), 0)});
    auto strm = cfg;
    strm.streaming_stores = true;
    t.add_row({"streaming (NT)", Table::fmt(run(n, steps, strm, engine), 0)});
    t.print();
    std::puts(
        "paper: streaming stores eliminate the read-for-ownership fetch on the\n"
        "output stream (Section IV-A1) — a bandwidth effect, visible on\n"
        "bandwidth-bound machines and in bench/memtraffic.\n");
  }

  constexpr core::ScheduleFamily kFamilies[] = {
      core::ScheduleFamily::kPaper35D,
      core::ScheduleFamily::kDeep35D,
      core::ScheduleFamily::kDiamond,
  };

  {
    Table t({"family", "dim_t", "tile", "kappa", "B/upd pred", "Mupd/s"});
    core::Engine35 engine(threads);
    for (const int dim_t : {2, 4, 8}) {
      for (const core::ScheduleFamily fam : kFamilies) {
        const auto fcfg = family_cfg(fam, dim_t, n);
        const auto m = bench::measure_stencil7<float>(stencil::Variant::kBlocked35D, n,
                                                      steps, fcfg, engine);
        auto rec = family_record(core::to_string(fam), fcfg, n, steps,
                                 engine.num_threads(), m);
        const std::string tile = fam == core::ScheduleFamily::kDiamond
                                     ? "plane"
                                     : std::to_string(fcfg.dim_x);
        t.add_row({core::to_string(fam), std::to_string(dim_t), tile,
                   Table::fmt(rec.kappa, 2),
                   Table::fmt(rec.bytes_per_update_predicted, 2),
                   Table::fmt(m.mups, 0)});
        reporter.add(rec);
      }
    }
    t.print();
    std::puts(
        "families: the paper tile pays kappa ghost recompute that grows with dim_t;\n"
        "deep 3.5D fuses row pairs to push past the eq. 3 depth; the whole-plane\n"
        "diamond has kappa = 1 (no recompute), paying ring capacity instead\n"
        "(docs/SCHEDULES.md).\n");
  }

  {
    // The regression anchor for family-aware planning: the pre-family
    // planner pick (core::plan, paper schedule only) vs the best
    // plan_family pick across all three families, both measured. Planned
    // against the paper's Core i7 descriptor — a probed host descriptor
    // would make the picked dim_t (and so the record keys) vary with
    // machine load between runs.
    const machine::Descriptor mach = machine::core_i7();
    const machine::KernelSig sig = machine::seven_point();
    core::PlanOptions popt;
    popt.round_multiple = 4;
    popt.nz = n;
    const core::BlockPlan paper_plan =
        core::plan(mach, sig, Precision::kSingle, popt);
    core::BlockPlan best = paper_plan;
    for (const core::ScheduleFamily fam : kFamilies) {
      const core::BlockPlan p =
          core::plan_family(mach, sig, Precision::kSingle, fam, popt);
      if (p.feasible && p.predicted_mups > best.predicted_mups) best = p;
    }

    Table t({"planner", "family", "dim_t", "tile", "W", "Mupd/s"});
    core::Engine35 engine(threads);
    const auto paper_cfg = plan_cfg(paper_plan, n);
    const auto best_cfg = plan_cfg(best, n);
    const auto m_paper = bench::measure_stencil7<float>(stencil::Variant::kBlocked35D,
                                                        n, steps, paper_cfg, engine);
    const auto m_best = bench::measure_stencil7<float>(stencil::Variant::kBlocked35D,
                                                       n, steps, best_cfg, engine);
    t.add_row({"paper-only (pre-family)", core::to_string(paper_cfg.family),
               std::to_string(paper_cfg.dim_t), std::to_string(paper_cfg.dim_x),
               "-", Table::fmt(m_paper.mups, 0)});
    t.add_row({"family-aware", core::to_string(best_cfg.family),
               std::to_string(best_cfg.dim_t), std::to_string(best_cfg.dim_x),
               std::to_string(best_cfg.dim_z), Table::fmt(m_best.mups, 0)});
    t.print();
    const double gain = m_paper.mups > 0 ? m_best.mups / m_paper.mups : 0.0;
    std::printf("family-aware plan: %s dim_t %d -> %.2fX the paper-only pick\n",
                core::to_string(best_cfg.family), best_cfg.dim_t, gain);

    auto rec_paper = family_record("plan-paper-only", paper_cfg, n, steps,
                                   engine.num_threads(), m_paper);
    auto rec_best = family_record("plan-family-aware", best_cfg, n, steps,
                                  engine.num_threads(), m_best);
    rec_best.extra["planner_gain"] = gain;
    rec_best.extra["planner_predicted_mups"] = best.predicted_mups;
    rec_paper.extra["planner_predicted_mups"] = paper_plan.predicted_mups;
    reporter.add(rec_paper);
    reporter.add(rec_best);
  }
  return 0;
}
