// Ablation of the paper's scheduling design choices (Section V-C/V-D):
//
//   (1) parallel rounds (2R+2 planes/instance, one barrier per outer-z)
//       vs the serialized strawman (2R+1 planes, barrier per step);
//   (2) barrier implementation (spin / tournament / pthread);
//   (3) streaming vs regular external stores.
//
// The serialized mode multiplies barrier crossings by dim_t and removes
// cross-instance parallelism — the cost the extra sub-plane buys back.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"
#include "machine/kernel_sig.h"

using namespace s35;

namespace {

double run(long n, int steps, const stencil::SweepConfig& cfg, core::Engine35& engine) {
  return bench::measure_stencil7<float>(stencil::Variant::kBlocked35D, n, steps, cfg,
                                        engine)
      .mups;
}

}  // namespace

int main() {
  const long n = env_int("S35_FULL", 0) ? 256 : 128;
  const int steps = 6;
  const int threads = bench::bench_threads();
  std::printf("== Scheduling ablations: 3.5D 7-pt SP, %ld^3, %d threads ==\n\n", n,
              threads);

  stencil::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = std::min<long>(n, 96);

  {
    Table t({"mode", "planes/instance", "barriers/outer-z", "Mupd/s"});
    for (int thr : {threads, 4}) {
      core::Engine35 engine(thr);
      auto par = cfg;
      const double mp = run(n, steps, par, engine);
      auto ser = cfg;
      ser.serialized = true;
      const double ms = run(n, steps, ser, engine);
      char label_p[48], label_s[48];
      std::snprintf(label_p, sizeof(label_p), "parallel rounds (%d thr)", thr);
      std::snprintf(label_s, sizeof(label_s), "serialized steps (%d thr)", thr);
      t.add_row({label_p, "2R+2 = 4", "1", Table::fmt(mp, 0)});
      t.add_row({label_s, "2R+1 = 3", "dim_t = 3", Table::fmt(ms, 0)});
    }
    t.print();
    std::puts(
        "paper: the extra sub-plane multiplies available parallelism by dim_t and\n"
        "cuts barriers to one per outer-z step (Section V-C).\n");
  }

  {
    Table t({"external stores", "Mupd/s"});
    core::Engine35 engine(threads);
    auto reg = cfg;
    t.add_row({"write-allocate", Table::fmt(run(n, steps, reg, engine), 0)});
    auto strm = cfg;
    strm.streaming_stores = true;
    t.add_row({"streaming (NT)", Table::fmt(run(n, steps, strm, engine), 0)});
    t.print();
    std::puts(
        "paper: streaming stores eliminate the read-for-ownership fetch on the\n"
        "output stream (Section IV-A1) — a bandwidth effect, visible on\n"
        "bandwidth-bound machines and in bench/memtraffic.");
  }
  return 0;
}
