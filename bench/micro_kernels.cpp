// Google-benchmark microbenchmarks of the inner kernels: 7-point /
// 27-point row updates per SIMD backend and the D3Q19 BGK collision.
// These are the per-row building blocks every sweep variant shares.
#include <benchmark/benchmark.h>

#include "grid/grid3.h"
#include "lbm/collide.h"
#include "stencil/stencil_kernels.h"

using namespace s35;

namespace {

template <typename T, typename Tag>
void BM_Stencil7Row(benchmark::State& state) {
  using V = simd::Vec<T, Tag>;
  const long n = state.range(0);
  grid::Grid3<T> g(n, 3, 3);
  g.fill_random(1, T(-1), T(1));
  grid::Grid3<T> out(n, 1, 1);
  const auto stencil = stencil::default_stencil7<T>();
  const auto acc = [&](int dz, int dy) -> const T* { return g.row(1 + dy, 1 + dz); };
  for (auto _ : state) {
    stencil::update_row<V>(stencil, acc, out.row(0, 0), 1, n - 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2));
}

// Register-blocked interior fast path (scalar peel to alignment, 4xW
// X-unroll); Fma=true additionally fuses each multiply-add (one rounding).
template <typename T, typename Tag, bool Fma>
void BM_Stencil7RowFast(benchmark::State& state) {
  using V = simd::Vec<T, Tag>;
  const long n = state.range(0);
  grid::Grid3<T> g(n, 3, 3);
  g.fill_random(1, T(-1), T(1));
  grid::Grid3<T> out(n, 1, 1);
  const auto stencil = stencil::default_stencil7<T>();
  const auto acc = [&](int dz, int dy) -> const T* { return g.row(1 + dy, 1 + dz); };
  const stencil::RowFastOpts opt;
  for (auto _ : state) {
    stencil::update_row_auto<V>(stencil, acc, out.row(0, 0), 1, n - 1, true, Fma, opt);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2));
}

// Y unroll-and-jam pair path: two adjacent rows per call, center-plane rows
// shared between both accumulator chains.
template <typename T, typename Tag>
void BM_Stencil7RowPair(benchmark::State& state) {
  using V = simd::Vec<T, Tag>;
  const long n = state.range(0);
  grid::Grid3<T> g(n, 5, 3);
  g.fill_random(1, T(-1), T(1));
  grid::Grid3<T> out(n, 2, 1);
  const auto stencil = stencil::default_stencil7<T>();
  const auto acc = [&](int dz, int dy) -> const T* { return g.row(1 + dy, 1 + dz); };
  const stencil::RowFastOpts opt;
  for (auto _ : state) {
    stencil.template rows2_fast<V, false>(acc, out.row(0, 0), out.row(1, 0), 1, n - 1,
                                          opt);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * (n - 2));
}

template <typename T, typename Tag>
void BM_Stencil27Row(benchmark::State& state) {
  using V = simd::Vec<T, Tag>;
  const long n = state.range(0);
  grid::Grid3<T> g(n, 3, 3);
  g.fill_random(1, T(-1), T(1));
  grid::Grid3<T> out(n, 1, 1);
  const auto stencil = stencil::default_stencil27<T>();
  const auto acc = [&](int dz, int dy) -> const T* { return g.row(1 + dy, 1 + dz); };
  for (auto _ : state) {
    stencil::update_row<V>(stencil, acc, out.row(0, 0), 1, n - 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2));
}

template <typename T, typename Tag>
void BM_BgkCollide(benchmark::State& state) {
  using V = simd::Vec<T, Tag>;
  V fin[lbm::kQ], fout[lbm::kQ];
  for (int i = 0; i < lbm::kQ; ++i) fin[i] = V::set1(lbm::weight<T>(i));
  for (auto _ : state) {
    lbm::bgk_collide<V, T>(fin, fout, T(1.2));
    benchmark::DoNotOptimize(fout);
    // Feed the output back so the loop cannot be hoisted.
    fin[0] = fout[0];
  }
  state.SetItemsProcessed(state.iterations() * V::width);
}

}  // namespace

BENCHMARK_TEMPLATE(BM_Stencil7Row, float, simd::ScalarTag)->Arg(512);
#if defined(__SSE2__)
BENCHMARK_TEMPLATE(BM_Stencil7Row, float, simd::SseTag)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7Row, double, simd::SseTag)->Arg(512);
#endif
#if defined(__AVX__)
BENCHMARK_TEMPLATE(BM_Stencil7Row, float, simd::AvxTag)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7Row, double, simd::AvxTag)->Arg(512);
#endif

BENCHMARK_TEMPLATE(BM_Stencil7RowFast, float, simd::ScalarTag, false)->Arg(512);
#if defined(__AVX__)
BENCHMARK_TEMPLATE(BM_Stencil7RowFast, float, simd::AvxTag, false)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7RowFast, double, simd::AvxTag, false)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7RowPair, float, simd::AvxTag)->Arg(512);
#endif
#if defined(__AVX2__) && defined(__FMA__)
BENCHMARK_TEMPLATE(BM_Stencil7RowFast, float, simd::Avx2Tag, false)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7RowFast, float, simd::Avx2Tag, true)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7RowFast, double, simd::Avx2Tag, true)->Arg(512);
BENCHMARK_TEMPLATE(BM_Stencil7RowPair, float, simd::Avx2Tag)->Arg(512);
#endif

BENCHMARK_TEMPLATE(BM_Stencil27Row, float, simd::ScalarTag)->Arg(512);
#if defined(__AVX__)
BENCHMARK_TEMPLATE(BM_Stencil27Row, float, simd::AvxTag)->Arg(512);
#endif

BENCHMARK_TEMPLATE(BM_BgkCollide, float, simd::ScalarTag);
#if defined(__AVX__)
BENCHMARK_TEMPLATE(BM_BgkCollide, float, simd::AvxTag);
BENCHMARK_TEMPLATE(BM_BgkCollide, double, simd::AvxTag);
#endif

BENCHMARK_MAIN();
