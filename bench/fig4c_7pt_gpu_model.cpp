// Figure 4(c): 7-point stencil on the GTX 285 — reproduced through the
// analytical GPU model (no GPU in this environment; see DESIGN.md
// substitutions). Also prints the Section VI-A blocking-parameter
// derivation and the Section VI-B LBM infeasibility result.
#include <cstdio>

#include "common/table.h"
#include "gpumodel/gpu_model.h"
#include "gpusim/programs.h"
#include "telemetry/report.h"

using namespace s35;
using machine::Precision;
using namespace s35::gpumodel;

namespace {

telemetry::BenchRecord model_record(const char* variant, Precision prec, double mups,
                                    double bytes_per_update) {
  telemetry::BenchRecord rec;
  rec.kernel = "stencil7_gtx285";
  rec.variant = variant;
  rec.precision = prec == Precision::kSingle ? "sp" : "dp";
  rec.source = "model";
  rec.mups = mups;
  rec.bytes_per_update_measured = bytes_per_update;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::JsonReporter reporter("fig4c_7pt_gpu_model", argc, argv);
  std::puts("== Section VI-A: GPU 3.5D parameters (7-pt SP, 64 KB register file) ==");
  const GpuBlockingParams bp = plan_stencil7_sp();
  Table p({"dim_t", "dim_x bound", "dim_x (warp)", "kappa", "feasible"});
  p.add_row({Table::fmt(bp.dim_t, 0), Table::fmt(static_cast<double>(bp.dim_x_bound), 0),
             Table::fmt(static_cast<double>(bp.dim_x), 0), Table::fmt(bp.kappa, 2),
             bp.feasible ? "yes" : "no"});
  p.print();
  std::puts("paper: dim_t=2, dim_x <= 45.2 -> 32, kappa ~1.31\n");

  std::puts("== Figure 4(c): 7-pt stencil on GTX 285 (model) ==");
  Table t({"precision", "scheme", "model Mupd/s", "bound", "paper"});
  const struct {
    GpuScheme s;
    const char* paper_sp;
    const char* paper_dp;
  } rows[] = {
      {GpuScheme::kNaive, "3300", "-"},
      {GpuScheme::kSpatialShared, "9234 (2.8X)", "4600 (compute bound)"},
      {GpuScheme::kMultiUpdate, "17115 (1.8-2X)", "= spatial (unnecessary)"},
  };
  for (Precision prec : {Precision::kSingle, Precision::kDouble}) {
    for (const auto& r : rows) {
      const auto pr = predict_stencil7(r.s, prec);
      t.add_row({machine::to_string(prec), to_string(r.s), Table::fmt(pr.mups, 0),
                 pr.bandwidth_bound ? "bandwidth" : "compute",
                 prec == Precision::kSingle ? r.paper_sp : r.paper_dp});
      reporter.add(model_record(to_string(r.s), prec, pr.mups, pr.bytes_per_update));
    }
  }
  t.print();

  std::puts("\n== Section VI-B: LBM SP blocking feasibility on GTX 285 ==");
  Table l({"dim_t", "dim_x bound", "needed (> 2R*dim_t)", "feasible"});
  for (int dt : {7, 2}) {
    const auto lb = plan_lbm_sp(dt);
    l.add_row({Table::fmt(dt, 0), Table::fmt(static_cast<double>(lb.dim_x_bound), 0),
               Table::fmt(2.0 * dt, 0), lb.feasible ? "yes" : "no"});
  }
  l.print();
  std::puts("paper: dim_t >= 6.1 -> dim_x <= 2; even dim_t = 2 -> dim_x <= 4: no blocking.");

  std::puts("\n== SIMT simulator (structural, no per-scheme calibration) ==");
  Table s({"kernel", "sim Mupd/s", "GB/s", "blocks/SM", "bound", "paper"});
  const struct {
    gpusim::GpuKernel k;
    const char* paper;
  } sims[] = {
      {gpusim::GpuKernel::kNaive7pt, "3300"},
      {gpusim::GpuKernel::kSpatial7pt, "9234"},
      {gpusim::GpuKernel::kBlocked35D7pt, "13252-17115"},
      {gpusim::GpuKernel::kNaiveLbm, "485 MLUPS"},
  };
  for (const auto& r : sims) {
    const auto res = gpusim::run_kernel(r.k, Precision::kSingle);
    s.add_row({gpusim::to_string(r.k), Table::fmt(res.mups, 0),
               Table::fmt(res.achieved_gbps, 0), Table::fmt(res.concurrent_blocks, 0),
               res.bandwidth_bound ? "bandwidth" : "compute", r.paper});
  }
  s.print();
  std::puts(
      "the simulator executes the kernels' warp/shared-memory/coalescing structure\n"
      "on an event-driven GT200 SM; the ordering and bound transitions emerge\n"
      "without per-scheme rate constants (src/gpusim).");
  return 0;
}
