// Section VII-A SIMD scaling: the same kernels against every vector backend
// this build and CPU provide (scalar, SSE, AVX, AVX2+FMA, AVX-512), selected
// at run time through simd::dispatch — so one binary produces the whole
// ladder and never references a backend its compile flags lack. The paper reports
// "around 3.2X SP SSE scaling, and 1.65X DP SSE scaling" for the
// compute-bound 3.5D 7-point stencil.
//
// Two granularities are reported:
//   row kernel — the pure stencil inner loop, the level at which SIMD width
//                actually acts; this is where the paper's 3.2X shows up.
//                Measured three ways per backend: the generic vector loop,
//                the register-blocked interior fast path, and the fast path
//                with fused multiply-add (one rounding per madd).
//   full sweep — naive Jacobi sweep including all memory traffic; on a
//                bandwidth- or staging-bound configuration SIMD gains
//                shrink (the Figure 5(a) "+simd < 2X" effect).
// This TU is compiled with -fno-tree-vectorize so the scalar backend stays
// scalar (GCC 12 would otherwise auto-vectorize it at -O2).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "simd/dispatch.h"

using namespace s35;

namespace {

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> out;
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kSse, simd::Isa::kAvx,
                        simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    if (simd::isa_available(isa)) out.push_back(isa);
  }
  return out;
}

struct RowMups {
  double generic = 0.0;   // update_row: plain vector loop + scalar tail
  double fast = 0.0;      // row_fast: peel/align, 4xW unroll, exact rounding
  double fast_fma = 0.0;  // row_fast with fused multiply-add
};

template <typename T>
RowMups row_kernel_mups(simd::Isa isa, long n) {
  return simd::dispatch(isa, [&](auto tag) {
    using V = simd::Vec<T, decltype(tag)>;
    grid::Grid3<T> g(n, 3, 3);
    g.fill_random(1, T(-1), T(1));
    grid::Grid3<T> out(n, 1, 1);
    const auto stencil = stencil::default_stencil7<T>();
    const auto acc = [&](int dz, int dy) -> const T* { return g.row(1 + dy, 1 + dz); };
    const double updates = 512.0 * static_cast<double>(n - 2);
    const stencil::RowFastOpts opt;
    RowMups r;
    r.generic = updates / time_best_of(
                              [&] {
                                for (int rep = 0; rep < 512; ++rep)
                                  stencil::update_row<V>(stencil, acc, out.row(0, 0),
                                                         1, n - 1);
                              },
                              3, 0.05) /
                1e6;
    r.fast = updates / time_best_of(
                           [&] {
                             for (int rep = 0; rep < 512; ++rep)
                               stencil::update_row_auto<V>(stencil, acc, out.row(0, 0),
                                                           1, n - 1, true, false, opt);
                           },
                           3, 0.05) /
             1e6;
    r.fast_fma = updates / time_best_of(
                               [&] {
                                 for (int rep = 0; rep < 512; ++rep)
                                   stencil::update_row_auto<V>(
                                       stencil, acc, out.row(0, 0), 1, n - 1, true,
                                       true, opt);
                               },
                               3, 0.05) /
                 1e6;
    return r;
  });
}

template <typename T>
bench::Measurement naive_sweep(simd::Isa isa, long n, int steps,
                               core::Engine35& engine) {
  const auto stencil = stencil::default_stencil7<T>();
  grid::GridPair<T> pair(n, n, n, engine.team());
  pair.src().fill_random(7, T(-1), T(1));
  stencil::SweepConfig cfg;
  cfg.kernel.isa = isa;
  return bench::measure_updates(
      [&] {
        stencil::run_sweep_auto(stencil::Variant::kNaive, stencil, pair, steps, cfg,
                                engine);
      },
      static_cast<double>(n) * n * n * steps);
}

// One record per (kernel granularity, backend, path): the record's variant
// names the backend and path, extra carries the ratio vs the scalar generic
// loop and (row kernel only) the fast-over-generic speedup on this backend.
void add_record(telemetry::JsonReporter& reporter, const char* kernel,
                const char* prec, const std::string& variant, long n, int steps,
                int threads, double mups, double vs_scalar, double fast_speedup = 0.0,
                const telemetry::Totals* phases = nullptr) {
  telemetry::BenchRecord rec;
  rec.kernel = kernel;
  rec.variant = variant;
  rec.precision = prec;
  rec.nx = rec.ny = rec.nz = n;
  rec.steps = steps;
  rec.threads = threads;
  rec.mups = mups;
  rec.extra["vs_scalar"] = vs_scalar;
  if (fast_speedup > 0.0) rec.extra["fast_speedup"] = fast_speedup;
  if (phases != nullptr) rec.phases = *phases;
  bench::attach_roofline(rec, prec[0] == 'd' ? machine::Precision::kDouble
                                             : machine::Precision::kSingle);
  reporter.add(rec);
}

template <typename T>
void report(const char* prec, const std::vector<simd::Isa>& isas, long n, int steps,
            core::Engine35& engine, Table& t, telemetry::JsonReporter& reporter) {
  const int threads = engine.num_threads();
  double scalar_row = 0.0, scalar_sweep = 0.0;
  for (simd::Isa isa : isas) {
    const char* name = simd::to_string(isa);
    const RowMups row = row_kernel_mups<T>(isa, 512);
    const bench::Measurement sweep = naive_sweep<T>(isa, n, steps, engine);
    if (isa == simd::Isa::kScalar) {
      scalar_row = row.generic;
      scalar_sweep = sweep.mups;
    }
    t.add_row({name, prec, Table::fmt(row.generic, 0), Table::fmt(row.fast, 0),
               Table::fmt(row.fast_fma, 0), Table::fmt(row.generic / scalar_row, 2),
               Table::fmt(sweep.mups, 0), Table::fmt(sweep.mups / scalar_sweep, 2)});

    add_record(reporter, "stencil7_row", prec, name, 512, 1, 1, row.generic,
               row.generic / scalar_row);
    add_record(reporter, "stencil7_row", prec, std::string(name) + "-fast", 512, 1, 1,
               row.fast, row.fast / scalar_row, row.fast / row.generic);
    add_record(reporter, "stencil7_row", prec, std::string(name) + "-fast-fma", 512,
               1, 1, row.fast_fma, row.fast_fma / scalar_row,
               row.fast_fma / row.generic);
    add_record(reporter, "stencil7", prec, std::string("naive-") + name, n, steps,
               threads, sweep.mups, sweep.mups / scalar_sweep, 0.0, &sweep.phases);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("== SIMD scaling (runtime-dispatched backends) ==");
  telemetry::JsonReporter reporter("scaling_simd", argc, argv);
  bench::want_records(reporter);
  core::Engine35 engine(bench::bench_threads());
  const long n = env_int("S35_FULL", 0) ? 256 : 128;
  const std::vector<simd::Isa> isas = available_isas();

  std::printf("backends: compiled<=%s detected=%s dispatch=%s\n",
              simd::to_string(simd::compiled_isa()),
              simd::to_string(simd::detected_isa()),
              simd::to_string(simd::dispatch_isa()));

  Table t({"backend", "precision", "row generic", "row fast", "row fast+fma",
           "vs scalar", "naive sweep", "vs scalar"});
  report<float>("sp", isas, n, 4, engine, t, reporter);
  report<double>("dp", isas, n, 4, engine, t, reporter);
  t.print();
  std::puts(
      "\npaper (Core i7): 3.2X SP / 1.65X DP SSE scaling on the compute-bound 3.5D\n"
      "kernel (compare the row-kernel columns); memory-bound full sweeps gain less.\n"
      "row fast = register-blocked interior path (bit-exact); fast+fma adds fused\n"
      "multiply-add (opt-in, changes rounding).");
  return 0;
}
