// Section VII-A SIMD scaling: the same kernels against the scalar, SSE and
// (beyond the paper) AVX backends. The paper reports "around 3.2X SP SSE
// scaling, and 1.65X DP SSE scaling" for the compute-bound 3.5D 7-point
// stencil.
//
// Two granularities are reported:
//   row kernel — the pure stencil inner loop (update_row), the level at
//                which SIMD width actually acts; this is where the paper's
//                3.2X shows up.
//   full sweep — naive Jacobi sweep including all memory traffic; on a
//                bandwidth- or staging-bound configuration SIMD gains
//                shrink (the Figure 5(a) "+simd < 2X" effect).
// This TU is compiled with -fno-tree-vectorize so the scalar backend stays
// scalar (GCC 12 would otherwise auto-vectorize it at -O2).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

using namespace s35;

namespace {

template <typename T, typename Tag>
double row_kernel_mups(long n) {
  using V = simd::Vec<T, Tag>;
  grid::Grid3<T> g(n, 3, 3);
  g.fill_random(1, T(-1), T(1));
  grid::Grid3<T> out(n, 1, 1);
  const auto stencil = stencil::default_stencil7<T>();
  const auto acc = [&](int dz, int dy) -> const T* { return g.row(1 + dy, 1 + dz); };
  const double secs = time_best_of(
      [&] {
        for (int rep = 0; rep < 512; ++rep)
          stencil::update_row<V>(stencil, acc, out.row(0, 0), 1, n - 1);
      },
      3, 0.05);
  return 512.0 * (n - 2) / secs / 1e6;
}

template <typename T, typename Tag>
double naive_sweep_mups(long n, int steps, core::Engine35& engine) {
  const auto stencil = stencil::default_stencil7<T>();
  grid::GridPair<T> pair(n, n, n);
  pair.src().fill_random(7, T(-1), T(1));
  const double secs = time_best_of(
      [&] {
        stencil::run_sweep<stencil::Stencil7<T>, T, Tag>(stencil::Variant::kNaive,
                                                         stencil, pair, steps, {}, engine);
      },
      bench::bench_reps(), 0.05);
  return static_cast<double>(n) * n * n * steps / secs / 1e6;
}

// Emits one record per (granularity, backend): the record's variant names
// the SIMD backend, extra carries the scaling ratio vs scalar.
void add_record(telemetry::JsonReporter& reporter, const char* kernel,
                const char* prec, const char* backend, long n, int steps, int threads,
                double mups, double vs_scalar) {
  telemetry::BenchRecord rec;
  rec.kernel = kernel;
  rec.variant = backend;
  rec.precision = prec;
  rec.nx = rec.ny = rec.nz = n;
  rec.steps = steps;
  rec.threads = threads;
  rec.mups = mups;
  rec.extra["vs_scalar"] = vs_scalar;
  reporter.add(rec);
}

template <typename T>
void report(const char* prec, long n, int steps, core::Engine35& engine, Table& t,
            telemetry::JsonReporter& reporter) {
  const double rs = row_kernel_mups<T, simd::ScalarTag>(512);
  const double r4 = row_kernel_mups<T, simd::SseTag>(512);
  const double r8 = row_kernel_mups<T, simd::AvxTag>(512);
  t.add_row({"7-pt row kernel", prec, Table::fmt(rs, 0), Table::fmt(r4, 0),
             Table::fmt(r8, 0), Table::fmt(r4 / rs, 2), Table::fmt(r8 / rs, 2)});

  const double ss = naive_sweep_mups<T, simd::ScalarTag>(n, steps, engine);
  const double s4 = naive_sweep_mups<T, simd::SseTag>(n, steps, engine);
  const double s8 = naive_sweep_mups<T, simd::AvxTag>(n, steps, engine);
  t.add_row({"7-pt naive sweep", prec, Table::fmt(ss, 0), Table::fmt(s4, 0),
             Table::fmt(s8, 0), Table::fmt(s4 / ss, 2), Table::fmt(s8 / ss, 2)});

  const int threads = engine.num_threads();
  add_record(reporter, "stencil7_row", prec, "scalar", 512, 1, 1, rs, 1.0);
  add_record(reporter, "stencil7_row", prec, "sse", 512, 1, 1, r4, r4 / rs);
  add_record(reporter, "stencil7_row", prec, "avx", 512, 1, 1, r8, r8 / rs);
  add_record(reporter, "stencil7", prec, "naive-scalar", n, steps, threads, ss, 1.0);
  add_record(reporter, "stencil7", prec, "naive-sse", n, steps, threads, s4, s4 / ss);
  add_record(reporter, "stencil7", prec, "naive-avx", n, steps, threads, s8, s8 / ss);
}

}  // namespace

int main(int argc, char** argv) {
  std::puts("== SIMD scaling (scalar vs SSE vs AVX backends) ==");
  telemetry::JsonReporter reporter("scaling_simd", argc, argv);
  bench::want_records(reporter);
  core::Engine35 engine(bench::bench_threads());
  const long n = env_int("S35_FULL", 0) ? 256 : 128;

  Table t({"kernel", "precision", "scalar", "sse", "avx", "sse/scalar", "avx/scalar"});
  report<float>("SP", n, 4, engine, t, reporter);
  report<double>("DP", n, 4, engine, t, reporter);
  t.print();
  std::puts(
      "\npaper (Core i7): 3.2X SP / 1.65X DP SSE scaling on the compute-bound 3.5D\n"
      "kernel (compare the row-kernel rows); memory-bound full sweeps gain less.");
  return 0;
}
