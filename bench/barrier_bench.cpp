// Section III-B: "we implement our own barrier that is 50X faster than
// pthreads barrier." Google-benchmark comparison of the sense-reversing
// spin barrier, the tournament barrier and pthread_barrier_t.
//
// NOTE: on this single-core container all multi-thread barriers serialize
// through the OS scheduler, which flattens the gap — the 50X claim needs
// real parallel hardware. Single-participant costs and the relative
// ordering are still informative.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "parallel/barrier.h"

using namespace s35::parallel;

namespace {

void bench_barrier(benchmark::State& state, BarrierKind kind) {
  const int threads = static_cast<int>(state.range(0));
  auto barrier = make_barrier(kind, threads);

  if (threads == 1) {
    for (auto _ : state) {
      barrier->arrive_and_wait(0);
      barrier->arrive_and_wait(0);
    }
    state.SetItemsProcessed(state.iterations() * 2);
    return;
  }

  // Two crossings per iteration with the stop check between them: the
  // first crossing orders the main thread's stop-store before the workers'
  // load (a single-crossing protocol races — a worker released from
  // crossing k can observe a stop meant for k+1 and skip the final
  // crossing, deadlocking the main thread).
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int tid = 1; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      for (;;) {
        barrier->arrive_and_wait(tid);
        if (stop.load(std::memory_order_relaxed)) break;
        barrier->arrive_and_wait(tid);
      }
    });
  }
  for (auto _ : state) {
    barrier->arrive_and_wait(0);
    barrier->arrive_and_wait(0);
  }
  stop.store(true, std::memory_order_relaxed);
  barrier->arrive_and_wait(0);  // workers observe stop and exit
  for (auto& w : workers) w.join();
  state.SetItemsProcessed(state.iterations() * 2);  // crossings
}

void BM_SpinBarrier(benchmark::State& state) {
  bench_barrier(state, BarrierKind::kSpin);
}
void BM_TournamentBarrier(benchmark::State& state) {
  bench_barrier(state, BarrierKind::kTournament);
}
void BM_PthreadBarrier(benchmark::State& state) {
  bench_barrier(state, BarrierKind::kPthread);
}

}  // namespace

BENCHMARK(BM_SpinBarrier)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_TournamentBarrier)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_PthreadBarrier)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

BENCHMARK_MAIN();
