// Reproduces the Section IV kernel analysis: ops per point, bytes per
// point (with perfect spatial reuse), and γ = bytes/op for the 7-point
// stencil, 27-point stencil and D3Q19 LBM — then classifies each kernel as
// bandwidth- or compute-bound per platform and precision (Section IV-C).
#include <cstdio>

#include "common/table.h"
#include "machine/descriptor.h"
#include "machine/kernel_sig.h"

int main() {
  using namespace s35;
  using machine::Precision;

  std::puts("== Section IV: kernel bytes/op (gamma) ==");
  Table t({"Kernel", "ops/pt", "flops", "B/pt SP", "B/pt DP", "gamma SP", "gamma DP"});
  for (const auto& k : {machine::seven_point(), machine::twenty_seven_point(),
                        machine::lbm_d3q19()}) {
    t.add_row({k.name, Table::fmt(k.ops(), 0), Table::fmt(k.flops, 0),
               Table::fmt(k.bytes_sp, 0), Table::fmt(k.bytes_dp, 0),
               Table::fmt(k.gamma(Precision::kSingle), 2),
               Table::fmt(k.gamma(Precision::kDouble), 2)});
  }
  t.print();
  std::puts("paper: 7-pt 0.5/1.0, 27-pt 0.14/0.28, LBM 0.88/1.75\n");

  std::puts("== Section IV-C: boundedness (gamma vs platform Gamma) ==");
  Table b({"Kernel", "Precision", "Core i7", "GTX 285"});
  const auto cpu = machine::core_i7();
  const auto gpu = machine::gtx285();
  for (const auto& k : {machine::seven_point(), machine::twenty_seven_point(),
                        machine::lbm_d3q19()}) {
    for (Precision p : {Precision::kSingle, Precision::kDouble}) {
      const auto cls = [&](const machine::Descriptor& d) {
        return k.gamma(p) > d.bytes_per_op(p) ? "bandwidth-bound" : "compute-bound";
      };
      b.add_row({k.name, machine::to_string(p), cls(cpu), cls(gpu)});
    }
  }
  b.print();
  std::puts(
      "paper: 7-pt SP bw-bound both, DP bw-bound CPU / compute-bound GPU;\n"
      "       27-pt compute-bound both; LBM SP bw-bound both, DP bw CPU / compute GPU");
  return 0;
}
