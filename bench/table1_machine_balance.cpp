// Reproduces Table I: peak bandwidth, peak compute and bytes/op of the
// Core i7 and GTX 285, plus the effective (stencil-usable) GPU ratios of
// Section III-E, plus the equivalent numbers for the host this runs on.
#include <cstdio>

#include "common/table.h"
#include "machine/descriptor.h"

int main() {
  using namespace s35;
  using machine::Precision;

  std::puts("== Table I: peak BW (GB/s), peak compute (Gops), Bytes/Op ==");
  Table t({"Platform", "Peak BW", "SP Gops", "DP Gops", "B/Op SP", "B/Op DP",
           "eff B/Op SP", "eff B/Op DP", "achievable BW"});
  for (const auto& d : {machine::core_i7(), machine::gtx285()}) {
    t.add_row({d.name, Table::fmt(d.peak_bw_gbps, 0), Table::fmt(d.peak_sp_gops, 0),
               Table::fmt(d.peak_dp_gops, 0),
               Table::fmt(d.bytes_per_op(Precision::kSingle), 2),
               Table::fmt(d.bytes_per_op(Precision::kDouble), 2),
               Table::fmt(d.bytes_per_op(Precision::kSingle, true), 2),
               Table::fmt(d.bytes_per_op(Precision::kDouble, true), 2),
               Table::fmt(d.achievable_bw_gbps, 0)});
  }
  t.print();

  std::puts("\npaper: Core i7 0.29/0.59, GTX 285 0.14/1.7 (effective 0.43/3.44);");
  std::puts("paper measured achievable: 22 GB/s (i7), 131 GB/s (GTX 285)\n");

  std::puts("== Host (measured triad bandwidth; rough compute estimate) ==");
  const auto h = machine::host();
  Table th({"cores", "LLC MB", "SIMD bits", "achievable BW GB/s", "est SP Gops"});
  th.add_row({Table::fmt(h.cores, 0), Table::fmt(h.llc_bytes / double(1 << 20), 1),
              Table::fmt(h.simd_bits, 0), Table::fmt(h.achievable_bw_gbps, 1),
              Table::fmt(h.peak_sp_gops, 0)});
  th.print();
  return 0;
}
