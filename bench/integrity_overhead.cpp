// Online-integrity overhead: what does --audit cost on a fault-free run?
//
// Measures the 3.5D 7-point sweep three ways — integrity off, the default
// profile (audit rate 1/256, sentinel stride 32, guard stride 8), and
// audits on every row — and reports the throughput overhead of each
// against the unaudited run. The default profile is budgeted at <= ~5% on
// a quiet multi-core host (docs/RESILIENCE.md derives the expected cost
// from the scalar-reference/fast-path ratio and the plane-stride
// sampling); the rate-1.0 column shows the full price of exhaustive
// re-execution for scale.
//
// Every audited record also demands *zero* detections: a fault-free run
// that reports an SDC event is a false positive, and the bench (and the
// harness gate on the emitted records) fails on it.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "integrity/integrity.h"

using namespace s35;
using machine::Precision;

namespace {

struct AuditPoint {
  const char* label;
  bool enabled;
  double rate;
};

}  // namespace

int main(int argc, char** argv) {
  std::puts("== online-integrity overhead (fault-free --audit runs) ==");
  telemetry::JsonReporter reporter("integrity_overhead", argc, argv);
  bench::want_records(reporter);
  core::Engine35 engine(bench::bench_threads());

  const long n = bench::env_grid_list("S35_GRIDS", {96}).front();
  const int steps = 4;
  const auto s = stencil::default_stencil7<float>();
  const AuditPoint points[] = {
      {"off", false, 0.0},
      {"default", true, integrity::kDefaultAuditRate},
      {"every-row", true, 1.0},
  };

  Table t({"audit", "rate", "Mupd/s", "overhead", "rows audited", "sdc"});
  double base_mups = 0.0;
  bool clean = true;
  for (const AuditPoint& p : points) {
    stencil::SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = std::min<long>(n, 96);
    integrity::IntegrityMonitor mon;
    cfg.integrity.options.enabled = p.enabled;
    cfg.integrity.options.audit_rate = p.rate;
    if (p.rate >= 1.0) {  // paranoid column: full coverage, not just audits
      cfg.integrity.options.sentinel_stride = 1;
      cfg.integrity.options.guard_stride = 1;
    }
    cfg.integrity.monitor = p.enabled ? &mon : nullptr;

    grid::GridPair<float> pair(n, n, n, engine.team());
    pair.src().fill_random(7, -1.0f, 1.0f);
    const bench::Measurement m = bench::measure_updates(
        [&] {
          if (p.enabled) {
            (void)stencil::run_sweep_verified(stencil::Variant::kBlocked35D, s,
                                              pair, steps, cfg, engine);
          } else {
            stencil::run_sweep(stencil::Variant::kBlocked35D, s, pair, steps, cfg,
                               engine);
          }
        },
        static_cast<double>(n) * n * n * steps);
    if (base_mups == 0.0) base_mups = m.mups;
    const double overhead_pct = 100.0 * (base_mups / m.mups - 1.0);
    if (mon.sdc_detected() != 0) clean = false;

    t.add_row({p.label, Table::fmt(p.rate, 4), Table::fmt(m.mups, 0),
               p.enabled ? Table::fmt(overhead_pct, 1) + "%" : "-",
               std::to_string(mon.audited_rows()),
               std::to_string(mon.sdc_detected())});

    telemetry::BenchRecord rec = bench::stencil_record<float>(
        "7pt", stencil::Variant::kBlocked35D, Precision::kSingle, n, steps, cfg,
        engine.num_threads(), m);
    rec.variant = std::string("blocked35d/audit-") + p.label;
    rec.extra["audit_rate"] = p.rate;
    if (p.enabled) rec.extra["overhead_pct"] = overhead_pct;
    reporter.add(rec);
  }
  t.print();
  std::puts("budget: default-rate overhead <= ~5%; any sdc event on a fault-free"
            " run is a false positive (hard failure).");
  if (!clean) {
    std::puts("FAIL: fault-free audited run reported SDC events");
    return 1;
  }
  return 0;
}
