// Reproduces every overestimation (κ) number the paper quotes:
//   Section V-A2: 3D blocking κ = 1.95X (R=10% of dim), 4.62X (R=20%)
//   Section V-A3: 2.5D κ = 1.2X, 1.77X for the same ratios
//   Section VI-A: 7-pt CPU 3.5D κ ≈ 1.02 (SP, dim 360), 1.04 (DP, 256);
//                 4D comparison overheads 1.18X SP / 1.21X DP
//   Section VI-B: LBM CPU 3.5D κ ≈ 1.21 (SP, 64), 1.34 (DP, 44);
//                 4D overheads 2.03X SP / 2.71X DP
//   Section VI-A GPU: κ ≈ 1.31 at dim_x = 32, dim_t = 2
#include <cstdio>

#include "common/table.h"
#include "core/planner.h"
#include "machine/kernel_sig.h"

int main() {
  using namespace s35;
  using namespace s35::core;
  using machine::Precision;

  std::puts("== Section V-A: ghost-layer overestimation, 3D vs 2.5D ==");
  // Same on-chip capacity for both: the 3D example blocks a 100^3 window
  // (C/E = 1e6 elements); 2.5D keeps only 2R+1 planes resident, so its
  // tiles grow to sqrt(1e6/(2R+1)) per side.
  Table a({"R", "3D dim", "kappa 3D", "2.5D dim", "kappa 2.5D", "reduction"});
  for (int r : {10, 20}) {
    const double k3 = kappa_3d(r, 100, 100, 100);
    const long d25 = max_dim_25d(1000000, 1, r);
    const double k25 = kappa_25d(r, d25, d25);
    a.add_row({Table::fmt(r, 0), "100", Table::fmt(k3, 2),
               Table::fmt(static_cast<double>(d25), 0), Table::fmt(k25, 2),
               Table::fmt(k3 / k25, 2)});
  }
  a.print();
  std::puts("paper: 1.95X/1.2X at 10%, 4.62X/1.77X at 20% (2.6X reduction)\n");

  std::puts("== Section VI: planned 3.5D parameters and kappa (C = 4 MB) ==");
  Table b({"Kernel", "Precision", "dim_t", "dim_x", "kappa 3.5D", "kappa 4D",
           "buffer KB"});
  const auto cpu = machine::core_i7();
  for (const auto& k : {machine::seven_point(), machine::lbm_d3q19()}) {
    for (Precision p : {Precision::kSingle, Precision::kDouble}) {
      const auto plan = core::plan(cpu, k, p, {.round_multiple = 4});
      // 4D comparison: cube blocks from half the budget (two buffers).
      const long edge = max_dim_3d(cpu.blocking_capacity_bytes / 2, k.elem_bytes(p));
      const double k4 = kappa_4d(k.radius, plan.dim_t, edge, edge, edge);
      b.add_row({k.name, machine::to_string(p), Table::fmt(plan.dim_t, 0),
                 Table::fmt(static_cast<double>(plan.dim_x), 0), Table::fmt(plan.kappa, 2),
                 Table::fmt(k4, 2), Table::fmt(plan.buffer_bytes / 1024.0, 0)});
    }
  }
  b.print();
  std::puts(
      "paper: 7-pt 360/1.02 (SP), 256/1.04 (DP), 4D 1.18/1.21;\n"
      "       LBM 64/1.21 (SP), 44/1.34 (DP), 4D 2.03/2.71\n");

  std::puts("== Section VI-A GPU: register-file-sized 3.5D tiles ==");
  const long gpu_dim = 32;
  Table c({"dim_x", "dim_t", "kappa"});
  c.add_row({"32", "2", Table::fmt(kappa_35d(1, 2, gpu_dim, gpu_dim), 2)});
  c.print();
  std::puts("paper: kappa ~1.31X");
  return 0;
}
