// Single-thread SP 7-point row-kernel throughput for one (backend, path)
// choice — the interior fast-path ablation the perf work targets. Lives in
// its own TU compiled with -fno-tree-vectorize so the comparison measures
// the hand-written vector code: GCC 12 auto-vectorizes surrounding loops at
// -O2, which would blur what each explicit backend contributes.
#pragma once

#include "simd/dispatch.h"

namespace s35::bench {

// Mupdates/s for a 7-point SP row of length n on backend `isa`, through the
// generic vector loop (fast=false) or the register-blocked fast path
// (fast=true), optionally with fused multiply-add.
double row_ablation_mups(simd::Isa isa, bool fast, bool fma, long n);

}  // namespace s35::bench
