#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "core/schedule.h"

namespace s35::core {
namespace {

// Reproduce Figure 3(a): R = 1, dim_t = 3. The figure numbers the loads and
// the compute steps of planes z >= 1 chronologically (frozen z0 copies are
// not counted). We enumerate the schedule the same way and check every
// step reference the paper makes.
TEST(TemporalSchedule, ReproducesFigure3a) {
  const TemporalSchedule sched(/*nz=*/64, /*radius=*/1, /*dim_t=*/3);
  ASSERT_EQ(sched.stagger(), 2);  // paper: z_s = z + 2R(dim_t - t) at R = 1
  ASSERT_EQ(sched.planes_per_instance(), 4);  // "(2R+2) XY sub-planes"

  std::map<int, std::tuple<StepKind, int, long>> numbered;  // S# -> (kind, t, z)
  int n = 0;
  for (long m = 0; m < sched.num_rounds() && n < 30; ++m) {
    for (const Step& s : sched.round(m)) {
      if (s.kind == StepKind::kCopy) continue;  // frozen z0 not numbered
      numbered[++n] = {s.kind, s.t, s.z};
    }
  }

  const auto expect_load = [&](int num, long z) {
    const auto& [kind, t, zz] = numbered.at(num);
    EXPECT_EQ(kind, StepKind::kLoad) << "S" << num;
    EXPECT_EQ(t, 0) << "S" << num;
    EXPECT_EQ(zz, z) << "S" << num;
  };
  const auto expect_compute = [&](int num, int t, long z) {
    const auto& [kind, tt, zz] = numbered.at(num);
    EXPECT_EQ(kind, StepKind::kCompute) << "S" << num;
    EXPECT_EQ(tt, t) << "S" << num;
    EXPECT_EQ(zz, z) << "S" << num;
  };

  // "S9 computes grid elements for z3(t'=1)"
  expect_compute(9, 1, 3);
  // "S21 computes grid elements for z2(t'=3)"
  expect_compute(21, 3, 2);
  // "Consider a step (say S16, at t'=2). This requires S7, S9 and S12":
  // S16 = z3(t'=2); S7/S9/S12 = z2,z3,z4 at t'=1.
  expect_compute(16, 2, 3);
  expect_compute(7, 1, 2);
  expect_compute(12, 1, 4);
  // "While S18 is updating the buffer, S19 reads from data stored by S8,
  // S11 and S14": S18 = load z8; S19 = z6(t'=1); S8/S11/S14 = loads z5,z6,z7.
  expect_load(18, 8);
  expect_compute(19, 1, 6);
  expect_load(8, 5);
  expect_load(11, 6);
  expect_load(14, 7);
  // "S20 reads from data stored by S9, S12 and S15" — S20 = z4(t'=2), which
  // reads the t'=1 planes z3, z4, z5 = S9, S12, S15.
  expect_compute(20, 2, 4);
  {
    const auto& [kind, t, z] = numbered.at(15);
    EXPECT_EQ(kind, StepKind::kCompute);
    EXPECT_EQ(t, 1);
    EXPECT_EQ(z, 5);
  }
  // "S21 reads from data stored by S10, S13 and S16" — t'=2 planes z1,z2,z3.
  {
    const auto& [kind10, t10, z10] = numbered.at(10);
    EXPECT_EQ(kind10, StepKind::kCompute);
    EXPECT_EQ(t10, 2);
    EXPECT_EQ(z10, 1);
    const auto& [kind13, t13, z13] = numbered.at(13);
    EXPECT_EQ(kind13, StepKind::kCompute);
    EXPECT_EQ(t13, 2);
    EXPECT_EQ(z13, 2);
  }
  // "Phase 1: Prolog ... performing steps S1..S13": S13 is the last step
  // before the first external write z1(t'=3) = S17.
  {
    const auto& [kind17, t17, z17] = numbered.at(17);
    EXPECT_EQ(kind17, StepKind::kCompute);
    EXPECT_EQ(t17, 3);
    EXPECT_EQ(z17, 1);
  }
}

// Dependency-order property: every step's source planes were produced in a
// strictly earlier round (parallel mode) or earlier in the same round
// (serialized mode), for a sweep of R and dim_t.
class ScheduleDeps : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(ScheduleDeps, SourcesProducedBeforeUse) {
  const auto [radius, dim_t, serialized] = GetParam();
  const long nz = 24;
  const TemporalSchedule sched(nz, radius, dim_t, serialized);

  // produced[(t, z)] = (round, index within round)
  std::map<std::pair<int, long>, std::pair<long, int>> produced;
  for (long m = 0; m < sched.num_rounds(); ++m) {
    const auto steps = sched.round(m);
    for (int i = 0; i < static_cast<int>(steps.size()); ++i) {
      const Step& s = steps[static_cast<std::size_t>(i)];
      // Check sources exist and were produced early enough.
      if (s.kind != StepKind::kLoad) {
        const long z0 = s.kind == StepKind::kCopy ? s.z : s.z - radius;
        const long z1 = s.kind == StepKind::kCopy ? s.z : s.z + radius;
        for (long q = std::max(0L, z0); q <= std::min(nz - 1, z1); ++q) {
          const auto it = produced.find({s.t - 1, q});
          ASSERT_NE(it, produced.end())
              << "step (t=" << s.t << ", z=" << s.z << ") needs (t-1, " << q << ")";
          if (serialized) {
            EXPECT_TRUE(it->second.first < m ||
                        (it->second.first == m && it->second.second < i));
          } else {
            EXPECT_LT(it->second.first, m);
          }
        }
      }
      if (!s.to_external) produced[{s.t, s.z}] = {m, i};
    }
  }

  // Completeness: every plane is produced at every buffered instance and
  // the external instance.
  for (int t = 0; t < dim_t; ++t)
    for (long z = 0; z < nz; ++z)
      EXPECT_TRUE(produced.count({t, z})) << "t=" << t << " z=" << z;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleDeps,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

// Ring conflict-freedom: within a parallel round, the slot written at each
// instance differs from every slot concurrently read from that instance.
class ScheduleRing : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScheduleRing, NoSlotConflictsWithinRound) {
  const auto [radius, dim_t] = GetParam();
  const long nz = 40;
  const TemporalSchedule sched(nz, radius, dim_t, /*serialized=*/false);
  for (long m = 0; m < sched.num_rounds(); ++m) {
    const auto steps = sched.round(m);
    // writes[t] = slot written into instance t this round (-1 if none).
    std::map<int, int> writes;
    for (const Step& s : steps) {
      if (!s.to_external) writes[s.t] = s.dst_slot;
    }
    for (const Step& s : steps) {
      if (s.kind == StepKind::kLoad) continue;
      const auto w = writes.find(s.t - 1);
      if (w == writes.end()) continue;
      for (int slot : s.src_slots) {
        EXPECT_NE(slot, w->second)
            << "round " << m << ": instance " << s.t - 1 << " slot " << slot
            << " read while written";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleRing,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3, 5)));

TEST(TemporalSchedule, PhaseBoundaries) {
  const TemporalSchedule sched(64, 1, 3);
  EXPECT_EQ(sched.steady_begin(), 6);  // dim_t * stagger
  EXPECT_EQ(sched.steady_end(), 64);
  EXPECT_EQ(sched.num_rounds(), 64 + 6);
}

TEST(TemporalSchedule, SerializedUsesSmallerRing) {
  const TemporalSchedule par(32, 1, 2, false);
  const TemporalSchedule ser(32, 1, 2, true);
  EXPECT_EQ(par.planes_per_instance(), 4);  // 2R+2
  EXPECT_EQ(ser.planes_per_instance(), 3);  // 2R+1
  EXPECT_LT(ser.num_rounds(), par.num_rounds() + 1);
}

TEST(TemporalSchedule, RejectsShallowGrids) {
  EXPECT_DEATH(TemporalSchedule(4, 2, 1), "shallow");
}

}  // namespace
}  // namespace s35::core
