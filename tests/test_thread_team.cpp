#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "parallel/partition.h"
#include "parallel/thread_team.h"

namespace s35::parallel {
namespace {

TEST(ThreadTeam, RunsEveryParticipantExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadTeam team(threads);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(threads));
    for (auto& h : hits) h.store(0);
    team.run([&](int tid) { hits[static_cast<std::size_t>(tid)].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadTeam, ReusableAcrossManyRuns) {
  ThreadTeam team(4);
  std::atomic<long> total{0};
  for (int r = 0; r < 500; ++r) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500L * 4);
}

TEST(ThreadTeam, ParallelForCoversRange) {
  ThreadTeam team(3);
  const long n = 1000;
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(n));
  for (auto& s : seen) s.store(0);
  team.parallel_for(n, [&](long b, long e) {
    for (long i = b; i < e; ++i) seen[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, ParallelForEmptyRange) {
  ThreadTeam team(2);
  int calls = 0;
  team.parallel_for(0, [&](long, long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  team.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ran = std::this_thread::get_id();
  });
  EXPECT_EQ(ran, caller);
}

TEST(ThreadTeam, CallerParticipatesAsThreadZero) {
  ThreadTeam team(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> tid0_is_caller{false};
  team.run([&](int tid) {
    if (tid == 0) tid0_is_caller.store(std::this_thread::get_id() == caller);
  });
  EXPECT_TRUE(tid0_is_caller.load());
}

TEST(ThreadTeam, SumReductionViaChunks) {
  ThreadTeam team(5);
  const long n = 12345;
  std::vector<long> partial(5, 0);
  team.run([&](int tid) {
    const auto [b, e] = chunk_range(n, 5, tid);
    long s = 0;
    for (long i = b; i < e; ++i) s += i;
    partial[static_cast<std::size_t>(tid)] = s;
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L), n * (n - 1) / 2);
}

// current_tid() must report the SPMD participant id inside run() (workers
// and the caller alike) and 0 from serial code.
TEST(ThreadTeam, CurrentTidReportsParticipant) {
  EXPECT_EQ(current_tid(), 0);
  ThreadTeam team(4);
  std::vector<std::atomic<int>> ok(4);
  for (auto& o : ok) o.store(0);
  team.run([&](int tid) {
    ok[static_cast<std::size_t>(tid)].store(current_tid() == tid ? 1 : 0);
  });
  for (auto& o : ok) EXPECT_EQ(o.load(), 1);
  EXPECT_EQ(current_tid(), 0);
}

TEST(PinMap, EnvOverrideParsesAndWraps) {
  ::setenv("S35_PIN_MAP", "3,1,2", 1);
  const std::vector<int> map = build_pin_map(5);
  ::unsetenv("S35_PIN_MAP");
  ASSERT_EQ(map.size(), 5u);
  EXPECT_EQ(map[0], 3);
  EXPECT_EQ(map[1], 1);
  EXPECT_EQ(map[2], 2);
  EXPECT_EQ(map[3], 3);  // wraps modulo the list length
  EXPECT_EQ(map[4], 1);
}

TEST(PinMap, MalformedEnvKeepsParsedPrefix) {
  ::setenv("S35_PIN_MAP", "2,junk,9", 1);
  const std::vector<int> map = build_pin_map(3);
  ::unsetenv("S35_PIN_MAP");
  ASSERT_EQ(map.size(), 3u);
  for (int c : map) EXPECT_EQ(c, 2);
}

// Without an override, every pin target must come from the allowed-affinity
// mask (pinning must stay valid under taskset/cgroup CPU restriction).
TEST(PinMap, DefaultIsSubsetOfAllowedAffinity) {
#if defined(__linux__)
  ::unsetenv("S35_PIN_MAP");
  cpu_set_t allowed;
  ASSERT_EQ(sched_getaffinity(0, sizeof(allowed), &allowed), 0);
  const std::vector<int> map = build_pin_map(16);
  ASSERT_EQ(map.size(), 16u);
  for (int c : map) EXPECT_TRUE(CPU_ISSET(static_cast<unsigned>(c), &allowed)) << c;
#endif
}

TEST(ThreadTeam, PinnedTeamWithEnvMapStillCorrect) {
  ::setenv("S35_PIN_MAP", "0", 1);
  std::atomic<long> total{0};
  {
    ThreadTeam team(3, /*pin_threads=*/true);
    for (int r = 0; r < 20; ++r) {
      team.run([&](int) { total.fetch_add(1); });
    }
  }
  ::unsetenv("S35_PIN_MAP");
  EXPECT_EQ(total.load(), 60);
}

TEST(ThreadTeam, PinnedTeamStillCorrect) {
  ThreadTeam team(4, /*pin_threads=*/true);
  std::atomic<long> total{0};
  for (int r = 0; r < 50; ++r) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

}  // namespace
}  // namespace s35::parallel
