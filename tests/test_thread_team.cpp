#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "parallel/partition.h"
#include "parallel/thread_team.h"

namespace s35::parallel {
namespace {

TEST(ThreadTeam, RunsEveryParticipantExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadTeam team(threads);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(threads));
    for (auto& h : hits) h.store(0);
    team.run([&](int tid) { hits[static_cast<std::size_t>(tid)].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadTeam, ReusableAcrossManyRuns) {
  ThreadTeam team(4);
  std::atomic<long> total{0};
  for (int r = 0; r < 500; ++r) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500L * 4);
}

TEST(ThreadTeam, ParallelForCoversRange) {
  ThreadTeam team(3);
  const long n = 1000;
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(n));
  for (auto& s : seen) s.store(0);
  team.parallel_for(n, [&](long b, long e) {
    for (long i = b; i < e; ++i) seen[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, ParallelForEmptyRange) {
  ThreadTeam team(2);
  int calls = 0;
  team.parallel_for(0, [&](long, long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  team.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ran = std::this_thread::get_id();
  });
  EXPECT_EQ(ran, caller);
}

TEST(ThreadTeam, CallerParticipatesAsThreadZero) {
  ThreadTeam team(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> tid0_is_caller{false};
  team.run([&](int tid) {
    if (tid == 0) tid0_is_caller.store(std::this_thread::get_id() == caller);
  });
  EXPECT_TRUE(tid0_is_caller.load());
}

TEST(ThreadTeam, SumReductionViaChunks) {
  ThreadTeam team(5);
  const long n = 12345;
  std::vector<long> partial(5, 0);
  team.run([&](int tid) {
    const auto [b, e] = chunk_range(n, 5, tid);
    long s = 0;
    for (long i = b; i < e; ++i) s += i;
    partial[static_cast<std::size_t>(tid)] = s;
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L), n * (n - 1) / 2);
}

TEST(ThreadTeam, PinnedTeamStillCorrect) {
  ThreadTeam team(4, /*pin_threads=*/true);
  std::atomic<long> total{0};
  for (int r = 0; r < 50; ++r) {
    team.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

}  // namespace
}  // namespace s35::parallel
