#include <gtest/gtest.h>

#include <vector>

#include "core/planner.h"
#include "core/tiling.h"

namespace s35::core {
namespace {

class TilingP
    : public ::testing::TestWithParam<std::tuple<long, long, long, int, int>> {};

// Output regions must partition the domain exactly; load regions must cover
// their outputs plus the R*dim_t ghost ring (clamped at domain edges); the
// valid-region chain must shrink consistently.
TEST_P(TilingP, OutputsPartitionDomain) {
  const auto [nx, ny, dim, radius, dim_t] = GetParam();
  if (dim < nx && dim <= 2L * radius * dim_t) GTEST_SKIP() << "infeasible combo";

  const Tiling tiling(nx, ny, dim, dim, radius, dim_t);
  std::vector<int> covered(static_cast<std::size_t>(nx * ny), 0);
  for (const Tile& t : tiling.tiles()) {
    // Load window contains the output window expanded by ghost (clamped).
    const long ghost = static_cast<long>(radius) * dim_t;
    EXPECT_LE(t.load.x.begin, std::max(0L, t.out.x.begin - ghost));
    EXPECT_GE(t.load.x.end, std::min(nx, t.out.x.end + ghost));
    EXPECT_LE(t.load.x.size(), std::max(dim, nx < dim ? nx : dim));

    // Valid chain: region(0) = load, region(dim_t) = out, monotone shrink.
    EXPECT_EQ(t.region(0).x.begin, t.load.x.begin);
    EXPECT_EQ(t.region(0).y.end, t.load.y.end);
    EXPECT_EQ(t.region(dim_t).x.begin, t.out.x.begin);
    EXPECT_EQ(t.region(dim_t).y.end, t.out.y.end);
    for (int s = 1; s <= dim_t; ++s) {
      EXPECT_GE(t.region(s).x.begin, t.region(s - 1).x.begin);
      EXPECT_LE(t.region(s).x.end, t.region(s - 1).x.end);
      EXPECT_GT(t.region(s).area(), 0);
    }

    for (long y = t.out.y.begin; y < t.out.y.end; ++y)
      for (long x = t.out.x.begin; x < t.out.x.end; ++x)
        ++covered[static_cast<std::size_t>(y * nx + x)];
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TilingP,
    ::testing::Combine(::testing::Values<long>(16, 33, 64, 100),
                       ::testing::Values<long>(16, 47, 64),
                       ::testing::Values<long>(12, 16, 24, 1024),
                       ::testing::Values(1, 2), ::testing::Values(1, 2, 3)));

// Interior tiles realize exactly the κ of eq. 2; clamped edge tiles load
// less, so the measured grid-wide κ is at most the analytic value.
TEST(Tiling, MeasuredKappaMatchesEq2ForInteriorTiles) {
  const long dim = 64;
  const int radius = 1, dim_t = 3;
  // Domain large enough that interior tiles dominate.
  const Tiling tiling(64 * 8 - 6 * 7, 64 * 8 - 6 * 7, dim, dim, radius, dim_t);
  const double analytic = kappa_35d(radius, dim_t, dim, dim);
  EXPECT_LE(tiling.measured_kappa(), analytic + 1e-9);
  EXPECT_GT(tiling.measured_kappa(), 1.0);

  // A tile fully interior loads dim^2 and outputs (dim - 2*R*dim_t)^2.
  bool found_interior = false;
  for (const Tile& t : tiling.tiles()) {
    if (t.load.x.begin > 0 && t.load.y.begin > 0 &&
        t.load.x.end < tiling.tiles().back().load.x.end &&
        t.load.y.end < tiling.tiles().back().load.y.end) {
      const double tile_kappa =
          static_cast<double>(t.load.area()) / static_cast<double>(t.out.area());
      EXPECT_NEAR(tile_kappa, analytic, 1e-9);
      found_interior = true;
      break;
    }
  }
  EXPECT_TRUE(found_interior);
}

TEST(Tiling, SingleTileWhenDimCoversDomain) {
  const Tiling tiling(32, 20, 1000, 1000, 1, 4);
  ASSERT_EQ(tiling.tiles().size(), 1u);
  const Tile& t = tiling.tiles()[0];
  EXPECT_EQ(t.load.x.size(), 32);
  EXPECT_EQ(t.out.y.size(), 20);
  // Whole-domain tile: no shrink anywhere (all edges are domain edges).
  EXPECT_EQ(t.region(4).area(), t.region(0).area());
  EXPECT_DOUBLE_EQ(tiling.measured_kappa(), 1.0);
}

TEST(Tiling, RejectsTooSmallDims) {
  EXPECT_DEATH(Tiling(100, 100, 6, 6, 1, 3), "too small");
}

TEST(SplitAxisTiles, EdgeTilesClampWithoutShrink) {
  const auto tiles = split_axis_tiles(100, 20, 1, 2);
  ASSERT_GE(tiles.size(), 2u);
  EXPECT_EQ(tiles.front().load.begin, 0);
  EXPECT_EQ(tiles.front().out.begin, 0);
  EXPECT_EQ(tiles.back().load.end, 100);
  EXPECT_EQ(tiles.back().out.end, 100);
  // Consecutive outputs abut.
  for (std::size_t i = 1; i < tiles.size(); ++i)
    EXPECT_EQ(tiles[i].out.begin, tiles[i - 1].out.end);
}

TEST(ShrinkExtent, FrozenAtDomainEdges) {
  const Extent interior = shrink_extent({10, 30}, 100, 2, 3);
  EXPECT_EQ(interior.begin, 16);
  EXPECT_EQ(interior.end, 24);
  const Extent left_edge = shrink_extent({0, 30}, 100, 2, 3);
  EXPECT_EQ(left_edge.begin, 0);  // domain edge: frozen, no shrink
  EXPECT_EQ(left_edge.end, 24);
  const Extent whole = shrink_extent({0, 100}, 100, 2, 3);
  EXPECT_EQ(whole.begin, 0);
  EXPECT_EQ(whole.end, 100);
}

}  // namespace
}  // namespace s35::core
