// Job service: queue ordering and admission, plan-cache memoization and
// CRC-guarded persistence, bit-exact warm-vs-cold execution, deadlines,
// cancellation mid-queue and mid-run, audit jobs, the NDJSON protocol, and
// a multi-client soak (the TSan leg runs this whole suite).
#include <gtest/gtest.h>

#include <unistd.h>
#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <cerrno>
#endif

#include <atomic>
#include <cstring>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "core/engine.h"
#include "grid/checkpoint.h"
#include "grid/grid3.h"
#include "machine/descriptor.h"
#include "machine/kernel_sig.h"
#include "service/job.h"
#include "service/json.h"
#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/queue.h"
#include "service/service.h"
#include "service/tenancy.h"
#include "stencil/stencil_kernels.h"
#include "stencil/sweeps.h"

namespace s35 {
namespace {

using service::BoundedJobQueue;
using service::CachedPlan;
using service::JobService;
using service::JobSpec;
using service::JobState;
using service::PlanCache;
using service::PlanKey;
using service::AdmitDecision;
using service::AdmitReason;
using service::QueueItem;
using service::ServiceOptions;
using service::TenancyOptions;
using service::TenantGovernor;

std::string tmp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

// Deterministic machine identity: no host probing, stable plan keys.
ServiceOptions test_options(int threads = 2) {
  ServiceOptions o;
  o.threads = threads;
  o.mach = machine::core_i7();
  return o;
}

std::uint32_t grid_crc(const grid::Grid3<float>& g) {
  std::uint32_t crc = 0;
  for (long z = 0; z < g.nz(); ++z)
    for (long y = 0; y < g.ny(); ++y)
      crc = crc32c(g.row(y, z), static_cast<std::size_t>(g.nx()) * sizeof(float), crc);
  return crc;
}

// Single-shot reference: one run_sweep_auto call over all steps, same
// seeding and boundary prep as the service's job runner.
std::uint32_t reference_crc(const JobSpec& spec, long dim_x, long dim_y, int dim_t) {
  core::Engine35 engine(2);
  grid::GridPair<float> pair(spec.nx, spec.eff_ny(), spec.eff_nz());
  pair.src().fill_random(spec.seed, -1.0f, 1.0f);
  stencil::freeze_boundary(pair.src(), pair.dst(), 1);
  stencil::SweepConfig cfg;
  cfg.dim_x = dim_x;
  cfg.dim_y = dim_y;
  cfg.dim_t = dim_t;
  run_sweep_auto(stencil::Variant::kBlocked35D, stencil::default_stencil7<float>(),
                 pair, spec.steps, cfg, engine);
  return grid_crc(pair.src());
}

// ------------------------------------------------------------------ queue

TEST(JobQueue, PriorityThenFifo) {
  BoundedJobQueue q(8);
  ASSERT_TRUE(q.try_push({1, 0, 1, 0}));
  ASSERT_TRUE(q.try_push({2, 5, 2, 0}));
  ASSERT_TRUE(q.try_push({3, 5, 3, 0}));
  ASSERT_TRUE(q.try_push({4, 1, 4, 0}));
  EXPECT_EQ(q.pop_wait(0)->id, 2u);  // highest priority, oldest first
  EXPECT_EQ(q.pop_wait(0)->id, 3u);
  EXPECT_EQ(q.pop_wait(0)->id, 4u);
  EXPECT_EQ(q.pop_wait(0)->id, 1u);
}

TEST(JobQueue, AffinityPrefersMatchingShapeWithinPriority) {
  BoundedJobQueue q(8);
  ASSERT_TRUE(q.try_push({1, 0, 1, 0xAA}));
  ASSERT_TRUE(q.try_push({2, 0, 2, 0xBB}));
  ASSERT_TRUE(q.try_push({3, 0, 3, 0xAA}));
  ASSERT_TRUE(q.try_push({4, 9, 4, 0xBB}));
  // Affinity never overrides priority...
  EXPECT_EQ(q.pop_wait(0xAA)->id, 4u);
  // ...but batches within the top priority class.
  EXPECT_EQ(q.pop_wait(0xAA)->id, 1u);
  EXPECT_EQ(q.pop_wait(0xAA)->id, 3u);
  EXPECT_EQ(q.pop_wait(0xAA)->id, 2u);
}

TEST(JobQueue, AdmissionRejectAndBackpressure) {
  BoundedJobQueue q(2);
  EXPECT_TRUE(q.try_push({1, 0, 1, 0}));
  EXPECT_TRUE(q.try_push({2, 0, 2, 0}));
  EXPECT_FALSE(q.try_push({3, 0, 3, 0}));     // full: admission reject
  EXPECT_FALSE(q.push_wait({3, 0, 3, 0}, 20));  // backpressure timeout
  EXPECT_EQ(q.pop_wait(0)->id, 1u);
  EXPECT_TRUE(q.push_wait({3, 0, 3, 0}, 20));  // space freed
  EXPECT_EQ(q.size(), 2u);
}

TEST(JobQueue, RemoveAndCloseDrain) {
  BoundedJobQueue q(4);
  ASSERT_TRUE(q.try_push({1, 0, 1, 0}));
  ASSERT_TRUE(q.try_push({2, 0, 2, 0}));
  EXPECT_TRUE(q.remove(1));
  EXPECT_FALSE(q.remove(1));  // already gone
  q.close();
  EXPECT_FALSE(q.try_push({5, 0, 5, 0}));  // no admission after close
  EXPECT_EQ(q.pop_wait(0)->id, 2u);        // queued items stay poppable
  EXPECT_FALSE(q.pop_wait(0).has_value()); // closed and drained
}

// ------------------------------------------------------------- plan cache

TEST(PlanCacheTest, LruEvictionAndCounters) {
  PlanCache cache(2);
  const auto sig = machine::seven_point();
  const auto mach = machine::core_i7();
  const PlanKey k1 = PlanKey::make(mach, sig, 32, 32, 32, 4);
  const PlanKey k2 = PlanKey::make(mach, sig, 64, 64, 64, 4);
  const PlanKey k3 = PlanKey::make(mach, sig, 96, 96, 96, 4);
  EXPECT_FALSE(cache.lookup(k1).has_value());
  cache.insert(k1, {16, 16, 2});
  cache.insert(k2, {32, 32, 3});
  EXPECT_TRUE(cache.lookup(k1).has_value());  // k1 is now MRU
  cache.insert(k3, {48, 48, 4});              // evicts k2 (LRU)
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCacheTest, SaveLoadRoundtripPreservesEntriesAndOrder) {
  const std::string path = tmp_path("plan_cache_rt.bin");
  PlanCache cache(8);
  const auto sig7 = machine::seven_point();
  const auto sig27 = machine::twenty_seven_point();
  const auto mach = machine::core_i7();
  const PlanKey k1 = PlanKey::make(mach, sig7, 32, 48, 64, 4);
  const PlanKey k2 = PlanKey::make(mach, sig27, 64, 64, 64, 2);
  cache.insert(k1, {16, 16, 2, core::ScheduleFamily::kDeep35D, 0, 7.25,
                    service::PlanSource::kAutotuner, 3});
  cache.insert(k2, {24, 24, 1, core::ScheduleFamily::kDiamond, 9, 0.0,
                    service::PlanSource::kPlanner, 0});
  ASSERT_TRUE(cache.lookup(k1).has_value());  // k1 MRU before save
  ASSERT_TRUE(cache.save(path).ok());

  PlanCache back(8);
  ASSERT_TRUE(back.load(path).ok());
  EXPECT_EQ(back.size(), 2u);
  const auto entries = back.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].key == k1);  // LRU order survives the roundtrip
  EXPECT_EQ(entries[0].plan.dim_x, 16);
  EXPECT_EQ(entries[0].plan.dim_t, 2);
  EXPECT_DOUBLE_EQ(entries[0].plan.cost, 7.25);
  EXPECT_EQ(entries[0].plan.family, core::ScheduleFamily::kDeep35D);
  EXPECT_EQ(entries[0].plan.source, service::PlanSource::kAutotuner);
  EXPECT_EQ(entries[0].plan.hits, 4u);  // 3 persisted + the pre-save lookup
  EXPECT_TRUE(entries[1].key == k2);
  EXPECT_EQ(entries[1].plan.family, core::ScheduleFamily::kDiamond);
  EXPECT_EQ(entries[1].plan.dim_z, 9);
  EXPECT_EQ(entries[1].plan.source, service::PlanSource::kPlanner);
}

TEST(PlanCacheTest, RejectsCorruptShortAndForeignFiles) {
  const std::string path = tmp_path("plan_cache_bad.bin");
  PlanCache cache(4);
  cache.insert(PlanKey::make(machine::core_i7(), machine::seven_point(), 32, 32, 32, 4),
               {16, 16, 2});
  ASSERT_TRUE(cache.save(path).ok());

  // Flip one payload byte: payload CRC must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);  // inside the first entry
    std::fputc(0x5A, f);
    std::fclose(f);
    PlanCache fresh(4);
    EXPECT_EQ(fresh.load(path).code(), fault::ErrorCode::kCorrupted);
    EXPECT_EQ(fresh.size(), 0u);  // nothing partially applied
  }
  // Truncate mid-payload.
  {
    ASSERT_TRUE(cache.save(path).ok());
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), 48), 0);
    PlanCache fresh(4);
    EXPECT_EQ(fresh.load(path).code(), fault::ErrorCode::kTruncated);
  }
  // Foreign file.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a plan cache, padded to header size....", f);
    std::fclose(f);
    PlanCache fresh(4);
    EXPECT_EQ(fresh.load(path).code(), fault::ErrorCode::kBadMagic);
  }
  // Missing file.
  {
    PlanCache fresh(4);
    EXPECT_EQ(fresh.load(tmp_path("plan_cache_nope.bin")).code(),
              fault::ErrorCode::kIoError);
  }
}

// A structurally valid pre-schedule-family (v1) cache file must be refused
// with a typed kBadHeader — its entries have a different layout — and the
// cache must start cold, not half-loaded.
TEST(PlanCacheTest, RejectsPreFamilyVersionAndStartsCold) {
  const std::string path = tmp_path("plan_cache_v1.bin");
  // Hand-craft a v1 header (same 32-byte layout, version field = 1) with an
  // empty payload and correct CRCs, so only the version check can fire.
  struct {
    char magic[8];
    std::uint32_t version;
    std::uint32_t count;
    std::uint64_t payload_bytes;
    std::uint32_t payload_crc;
    std::uint32_t header_crc;
  } h{};
  static_assert(sizeof(h) == 32);
  std::memcpy(h.magic, "S35PLNC1", 8);
  h.version = 1;
  h.header_crc = crc32c(&h, sizeof(h));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&h, sizeof(h), 1, f), 1u);
  std::fclose(f);

  PlanCache cache(4);
  cache.insert(PlanKey::make(machine::core_i7(), machine::seven_point(), 32, 32, 32, 4),
               {16, 16, 2});
  const fault::Status st = cache.load(path);
  EXPECT_EQ(st.code(), fault::ErrorCode::kBadHeader);
  EXPECT_NE(st.message().find("version"), std::string::npos);
  EXPECT_EQ(cache.size(), 1u);  // failed load leaves existing contents alone

  PlanCache fresh(4);
  EXPECT_EQ(fresh.load(path).code(), fault::ErrorCode::kBadHeader);
  EXPECT_EQ(fresh.size(), 0u);  // cold start
}

TEST(PlanCacheTest, ComputePlanIsDeterministicAndFeasible) {
  const auto mach = machine::core_i7();
  const auto sig = machine::seven_point();
  const CachedPlan a = service::compute_plan(mach, sig, 48, 48, 48, 4);
  const CachedPlan b = service::compute_plan(mach, sig, 48, 48, 48, 4);
  EXPECT_EQ(a.dim_x, b.dim_x);
  EXPECT_EQ(a.dim_y, b.dim_y);
  EXPECT_EQ(a.dim_t, b.dim_t);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_GT(a.dim_x, 2 * sig.radius * a.dim_t);  // non-empty output region
  EXPECT_LE(a.dim_x, 48);
  EXPECT_GE(a.dim_t, 1);
}

// ---------------------------------------------------------------- service

TEST(ServiceTest, RunsJobBitExactAndMemoizesPlan) {
  JobService svc(test_options());
  JobSpec spec;
  spec.nx = 32;
  spec.steps = 5;  // deliberately not a dim_t multiple: trailing partial pass
  spec.seed = 99;

  const auto id1 = svc.submit(spec);
  ASSERT_TRUE(id1.ok());
  const auto done1 = svc.wait(id1.value());
  ASSERT_TRUE(done1.has_value());
  ASSERT_EQ(done1->state, JobState::kDone) << done1->result.message;
  EXPECT_EQ(done1->result.steps_done, 5);
  EXPECT_FALSE(done1->result.plan_cache_hit);
  EXPECT_GT(done1->result.dim_x, 0);

  // The chunked, pooled service run must equal a single-shot sweep.
  EXPECT_EQ(done1->result.crc,
            reference_crc(spec, done1->result.dim_x, done1->result.dim_y,
                          done1->result.dim_t));

  // Repeat job: plan from cache, grids reused, bit-identical result.
  const auto id2 = svc.submit(spec);
  ASSERT_TRUE(id2.ok());
  const auto done2 = svc.wait(id2.value());
  ASSERT_TRUE(done2.has_value());
  ASSERT_EQ(done2->state, JobState::kDone);
  EXPECT_TRUE(done2->result.plan_cache_hit);
  EXPECT_TRUE(done2->result.batched);
  EXPECT_EQ(done2->result.crc, done1->result.crc);

  const auto s = svc.stats();
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.batched, 1u);
}

TEST(ServiceTest, WarmCacheMatchesColdServiceBitExact) {
  JobSpec spec;
  spec.nx = 24;
  spec.steps = 4;
  spec.seed = 7;

  std::uint32_t cold_crc = 0;
  {
    JobService cold(test_options());
    const auto id = cold.submit(spec);
    ASSERT_TRUE(id.ok());
    const auto done = cold.wait(id.value());
    ASSERT_TRUE(done && done->state == JobState::kDone);
    EXPECT_FALSE(done->result.plan_cache_hit);
    cold_crc = done->result.crc;
  }
  JobService warm(test_options());
  // Pre-warm the cache, then the "client" job must hit it and agree.
  const auto warmup = warm.submit(spec);
  ASSERT_TRUE(warmup.ok());
  ASSERT_TRUE(warm.wait(warmup.value()).has_value());
  const auto id = warm.submit(spec);
  ASSERT_TRUE(id.ok());
  const auto done = warm.wait(id.value());
  ASSERT_TRUE(done && done->state == JobState::kDone);
  EXPECT_TRUE(done->result.plan_cache_hit);
  EXPECT_EQ(done->result.crc, cold_crc);
}

TEST(ServiceTest, PlanCachePersistsAcrossRestart) {
  const std::string path = tmp_path("service_pc.bin");
  std::remove(path.c_str());
  JobSpec spec;
  spec.nx = 24;
  spec.steps = 2;
  {
    ServiceOptions o = test_options();
    o.plan_cache_path = path;
    JobService svc(o);
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    const auto done = svc.wait(id.value());
    ASSERT_TRUE(done && done->state == JobState::kDone);
    EXPECT_FALSE(done->result.plan_cache_hit);
    svc.shutdown();  // persists the cache
  }
  {
    ServiceOptions o = test_options();
    o.plan_cache_path = path;
    JobService svc(o);
    EXPECT_EQ(svc.plan_cache().size(), 1u);
    const auto id = svc.submit(spec);
    ASSERT_TRUE(id.ok());
    const auto done = svc.wait(id.value());
    ASSERT_TRUE(done && done->state == JobState::kDone);
    EXPECT_TRUE(done->result.plan_cache_hit);  // restart skipped tuning
  }
}

TEST(ServiceTest, AdmissionRejectsBadSpecsAndFullQueue) {
  ServiceOptions o = test_options();
  o.queue_capacity = 2;
  JobService svc(o);
  svc.set_paused(true);

  JobSpec bad;
  bad.kernel = "9pt";
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad = {};
  bad.nx = 4;
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad = {};
  bad.nx = 4096;  // over max_points
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad = {};
  bad.steps = 0;
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad = {};
  bad.dim_x = 16;  // dim_y missing
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);

  JobSpec ok;
  ok.nx = 16;
  ok.steps = 1;
  ASSERT_TRUE(svc.submit(ok).ok());
  ASSERT_TRUE(svc.submit(ok).ok());
  const auto full = svc.submit(ok);  // queue full, worker paused
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), fault::ErrorCode::kUnavailable);
  EXPECT_GE(svc.stats().rejected, 1u);

  svc.set_paused(false);
  EXPECT_TRUE(svc.drain(30'000));
}

TEST(ServiceTest, DeadlineExpiry) {
  JobService svc(test_options());
  svc.set_paused(true);
  JobSpec spec;
  spec.nx = 16;
  spec.steps = 1;
  spec.deadline_ms = 25;
  const auto id = svc.submit(spec);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  svc.set_paused(false);
  const auto done = svc.wait(id.value());
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kExpired);
  EXPECT_EQ(done->result.steps_done, 0);
  EXPECT_EQ(svc.stats().expired, 1u);
}

TEST(ServiceTest, CancelMidQueue) {
  JobService svc(test_options());
  svc.set_paused(true);
  JobSpec spec;
  spec.nx = 16;
  spec.steps = 1;
  const auto a = svc.submit(spec);
  const auto b = svc.submit(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(svc.cancel(b.value()));
  EXPECT_FALSE(svc.cancel(b.value()));  // already terminal
  EXPECT_FALSE(svc.cancel(999));        // unknown id
  const auto info = svc.info(b.value());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kCancelled);
  svc.set_paused(false);
  const auto done = svc.wait(a.value());
  ASSERT_TRUE(done && done->state == JobState::kDone);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(ServiceTest, CancelMidRunStopsAtPassBoundary) {
  JobService svc(test_options());
  JobSpec spec;
  spec.nx = 48;
  spec.steps = 2000;  // ~1000 pass boundaries: cancellation lands mid-run
  spec.dim_x = 16;
  spec.dim_y = 16;
  spec.dim_t = 2;
  const auto id = svc.submit(spec);
  ASSERT_TRUE(id.ok());
  // Wait until it is actually running, then cancel.
  for (int i = 0; i < 10'000; ++i) {
    const auto info = svc.info(id.value());
    ASSERT_TRUE(info.has_value());
    if (info->state != JobState::kQueued) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(svc.cancel(id.value()));
  const auto done = svc.wait(id.value(), 60'000);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kCancelled);
  EXPECT_LT(done->result.steps_done, spec.steps);
  EXPECT_NE(done->result.message.find("cancelled"), std::string::npos);
}

TEST(ServiceTest, AuditJobCountsRowsAndStaysBitExact) {
  JobService svc(test_options());
  JobSpec plain;
  plain.nx = 24;
  plain.steps = 4;
  plain.seed = 11;
  JobSpec audited = plain;
  audited.audit = true;
  audited.audit_rate = 1.0;

  const auto a = svc.submit(plain);
  const auto b = svc.submit(audited);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto da = svc.wait(a.value());
  const auto db = svc.wait(b.value());
  ASSERT_TRUE(da && da->state == JobState::kDone);
  ASSERT_TRUE(db && db->state == JobState::kDone) << db->result.message;
  EXPECT_GT(db->result.audited_rows, 0u);
  EXPECT_EQ(db->result.sdc_detected, 0u);  // fault-free run stays silent
  EXPECT_EQ(db->result.reexecs, 0u);
  EXPECT_EQ(da->result.crc, db->result.crc);  // audits never change results
  EXPECT_EQ(da->result.audited_rows, 0u);
}

// ----------------------------------------------------- checkpoint / resume

// A job that checkpoints at pass boundaries and a second job resuming from
// that checkpoint must together be bit-identical to one uninterrupted run.
TEST(ServiceTest, ResumeFromCheckpointIsBitExact) {
  const std::string ckpt = tmp_path("service_resume.ckpt");
  std::remove(ckpt.c_str());
  JobService svc(test_options());

  JobSpec spec;
  spec.nx = 20;
  spec.steps = 6;
  spec.dim_x = 8;
  spec.dim_y = 8;
  spec.dim_t = 1;
  spec.seed = 77;
  const std::uint32_t want =
      reference_crc(spec, spec.dim_x, spec.dim_y, spec.dim_t);

  // First half: 3 steps, checkpointing every pass (tag ends at 3).
  JobSpec half = spec;
  half.steps = 3;
  half.checkpoint_path = ckpt;
  half.checkpoint_every = 1;
  const auto a = svc.submit(half);
  ASSERT_TRUE(a.ok());
  const auto da = svc.wait(a.value());
  ASSERT_TRUE(da && da->state == JobState::kDone) << da->result.message;
  EXPECT_GE(da->result.checkpoints, 1);
  const auto info = grid::probe_checkpoint(ckpt);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().user_tag, 3u);

  // Second half: resume and run to 6; must equal the uninterrupted run.
  JobSpec rest = spec;
  rest.checkpoint_path = ckpt;
  rest.resume = true;
  const auto b = svc.submit(rest);
  ASSERT_TRUE(b.ok());
  const auto db = svc.wait(b.value());
  ASSERT_TRUE(db && db->state == JobState::kDone) << db->result.message;
  EXPECT_EQ(db->result.resumed_steps, 3);
  EXPECT_EQ(db->result.crc, want);
  std::remove(ckpt.c_str());
}

// A checkpoint whose user_tag exceeds the requested step count is stale
// (e.g. left over from a longer job on the same path): resume must fall
// back to a fresh start — still bit-exact — rather than trust it.
TEST(ServiceTest, ResumeWithStaleUserTagStartsFresh) {
  const std::string ckpt = tmp_path("service_stale.ckpt");
  std::remove(ckpt.c_str());
  JobService svc(test_options());

  JobSpec spec;
  spec.nx = 20;
  spec.steps = 6;
  spec.dim_x = 8;
  spec.dim_y = 8;
  spec.dim_t = 1;
  spec.seed = 78;
  JobSpec long_job = spec;
  long_job.checkpoint_path = ckpt;
  long_job.checkpoint_every = 1;
  const auto a = svc.submit(long_job);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(svc.wait(a.value()).has_value());  // tag is now 6

  JobSpec shorter = spec;
  shorter.steps = 4;  // < tag: the checkpoint is from the job's future
  shorter.checkpoint_path = ckpt;
  shorter.resume = true;
  const auto b = svc.submit(shorter);
  ASSERT_TRUE(b.ok());
  const auto db = svc.wait(b.value());
  ASSERT_TRUE(db && db->state == JobState::kDone) << db->result.message;
  EXPECT_EQ(db->result.resumed_steps, 0);  // fresh start, not a bogus resume
  EXPECT_EQ(db->result.crc,
            reference_crc(shorter, shorter.dim_x, shorter.dim_y, shorter.dim_t));
  std::remove(ckpt.c_str());
}

// resume without a checkpoint_path is a contradiction, rejected upfront.
TEST(ServiceTest, ResumeWithoutPathIsRejected) {
  JobService svc(test_options());
  JobSpec spec;
  spec.nx = 16;
  spec.steps = 2;
  spec.resume = true;
  EXPECT_EQ(svc.submit(spec).status().code(), fault::ErrorCode::kMismatch);
}

// --------------------------------------------------------------- protocol

TEST(ProtocolTest, HandleLineSubmitWaitStatsErrors) {
  JobService svc(test_options());
  bool shutdown = false;
  const std::string r1 = service::handle_line(
      svc, R"({"op":"submit","kernel":"7pt","n":16,"steps":2,"seed":3})", &shutdown);
  EXPECT_EQ(r1, "{\"ok\":true,\"id\":1}");
  const std::string r2 =
      service::handle_line(svc, R"({"op":"wait","id":1})", &shutdown);
  EXPECT_NE(r2.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(r2.find("\"crc\":\""), std::string::npos);
  EXPECT_NE(service::handle_line(svc, R"({"op":"stats"})", &shutdown)
                .find("\"submitted\":1"),
            std::string::npos);
  EXPECT_NE(service::handle_line(svc, R"({"op":"status","id":42})", &shutdown)
                .find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(service::handle_line(svc, R"({"op":"frobnicate"})", &shutdown)
                .find("bad_request"),
            std::string::npos);
  EXPECT_NE(service::handle_line(svc, "not json at all", &shutdown)
                .find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(service::handle_line(
                svc, R"({"op":"submit","kernel":"9pt","n":16})", &shutdown)
                .find("mismatch"),
            std::string::npos);
  EXPECT_FALSE(shutdown);
  service::handle_line(svc, R"({"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
}

TEST(ProtocolTest, ServeStreamRunsSession) {
  JobService svc(test_options());
  std::istringstream in(
      "{\"op\":\"submit\",\"kernel\":\"7pt\",\"n\":16,\"steps\":2}\n"
      "\n"  // blank lines are skipped
      "{\"op\":\"wait\",\"id\":1}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"stats\"}\n");  // after shutdown: never processed
  std::ostringstream out;
  EXPECT_EQ(service::serve_stream(svc, in, out), 3);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"id\":1"), std::string::npos);
  EXPECT_NE(s.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(s.find("\"shutdown\":true"), std::string::npos);
  EXPECT_EQ(s.find("\"submitted\""), std::string::npos);
}

// Deterministic malformed-input fuzz: the parser must answer every line —
// random bytes, structural mutations of a valid request, oversized input —
// with a well-formed error, never crash, and never latch shutdown.
TEST(ProtocolTest, FuzzMalformedInputNeverCrashesParser) {
  JobService svc(test_options());
  svc.set_paused(true);  // fuzz the parser, don't run accidental submits
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const std::string valid =
      R"({"op":"status","id":1,"kernel":"7pt","n":16,"steps":2})";

  for (int i = 0; i < 400; ++i) {
    std::string line;
    switch (i % 4) {
      case 0: {  // random bytes, including NULs and non-UTF8
        const std::size_t len = next() % 96;
        for (std::size_t j = 0; j < len; ++j)
          line.push_back(static_cast<char>(next() & 0xFF));
        break;
      }
      case 1:  // truncation of a valid request
        line = valid.substr(0, next() % valid.size());
        break;
      case 2: {  // byte-level mutation of a valid request
        line = valid;
        for (int m = 0; m < 3; ++m)
          line[next() % line.size()] = static_cast<char>(next() & 0xFF);
        break;
      }
      case 3: {  // structurally hostile: deep quotes, giant numbers
        line = "{\"op\":\"";
        for (int j = 0; j < static_cast<int>(next() % 40); ++j) line += "\\\"";
        line += "\",\"id\":999999999999999999999999999}";
        break;
      }
    }
    bool shutdown = false;
    const std::string resp = service::handle_line(svc, line, &shutdown);
    ASSERT_FALSE(resp.empty());
    EXPECT_EQ(resp.rfind("{\"ok\":", 0), 0u) << resp;
    EXPECT_FALSE(shutdown) << line;
  }

  // Oversized line: typed protocol error, bounded memory.
  std::string huge = R"({"op":"stats","pad":")";
  huge.append(service::json::kMaxRequestBytes, 'x');
  huge += "\"}";
  bool shutdown = false;
  const std::string resp = service::handle_line(svc, huge, &shutdown);
  EXPECT_NE(resp.find("protocol_error"), std::string::npos) << resp;
  // Oversized string *field* inside a size-ok line is also rejected.
  std::string field = R"({"op":"submit","kernel":")";
  field.append(service::json::kMaxStringField + 16, 'k');
  field += "\"}";
  const std::string resp2 = service::handle_line(svc, field, &shutdown);
  EXPECT_NE(resp2.find("\"ok\":false"), std::string::npos) << resp2;
  svc.set_paused(false);
}

// Concurrent save/load on one plan-cache path: the flock + atomic-replace
// pairing means every load sees a complete, CRC-clean file — never a torn
// or mid-replace state.
TEST(PlanCacheTest, ConcurrentSaveLoadStaysConsistent) {
  const std::string path = tmp_path("plan_cache_flock.bin");
  const auto mach = machine::core_i7();
  const auto sig = machine::seven_point();
  {  // seed the file so loaders never race file creation
    PlanCache cache(8);
    cache.insert(PlanKey::make(mach, sig, 32, 32, 32, 4), {16, 16, 2});
    ASSERT_TRUE(cache.save(path).ok());
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        if (t % 2 == 0) {  // writer: varying entry counts
          PlanCache cache(8);
          for (int e = 0; e <= (i % 3) + 1; ++e)
            cache.insert(PlanKey::make(mach, sig, 32 + 16 * e, 32, 32, 4),
                         {16, 16, 1 + e});
          if (!cache.save(path).ok()) failed.store(true);
        } else {  // reader: must always see a complete file
          PlanCache cache(8);
          const fault::Status st = cache.load(path);
          if (!st.ok() || cache.size() == 0) failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- unix socket

#ifdef __unix__

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int i = 0; i < 100; ++i) {  // server may still be binding
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  return -1;
}

bool send_line(int fd, const std::string& line) {
  const std::string msg = line + "\n";
  return ::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(msg.size());
}

// Reads one newline-terminated response (blocking, bounded by deadline).
std::string recv_line(int fd, int timeout_ms = 30'000) {
  std::string acc;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  char buf[1024];
  while (std::chrono::steady_clock::now() < deadline) {
    const std::size_t nl = acc.find('\n');
    if (nl != std::string::npos) return acc.substr(0, nl);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      acc.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return acc;
}

// One poll loop serves every client: a stalled client (half-written line,
// never finished) must not delay another client's submit/wait. The old
// accept-one-client-at-a-time transport failed exactly this.
TEST(ProtocolTest, ServeUnixMultiplexesPastStalledClient) {
  const std::string sock = tmp_path("s35_mux.sock");
  JobService svc(test_options());
  std::atomic<bool> stop{false};
  std::thread server([&] { service::serve_unix(svc, sock, &stop); });

  const int stalled = connect_unix(sock);
  ASSERT_GE(stalled, 0);
  // Half a request, no newline — this connection now just sits there.
  const std::string half = R"({"op":"submit","kernel":)";
  ASSERT_EQ(::send(stalled, half.data(), half.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(half.size()));

  const int live = connect_unix(sock);
  ASSERT_GE(live, 0);
  ASSERT_TRUE(send_line(live, R"({"op":"submit","kernel":"7pt","n":16,"steps":2})"));
  const std::string r1 = recv_line(live);
  EXPECT_NE(r1.find("\"ok\":true"), std::string::npos) << r1;
  ASSERT_TRUE(send_line(live, R"({"op":"wait","id":1})"));
  const std::string r2 = recv_line(live);
  EXPECT_NE(r2.find("\"state\":\"done\""), std::string::npos) << r2;

  // A second live client interleaves with the first — still served.
  const int live2 = connect_unix(sock);
  ASSERT_GE(live2, 0);
  ASSERT_TRUE(send_line(live2, R"({"op":"stats"})"));
  EXPECT_NE(recv_line(live2).find("\"submitted\":1"), std::string::npos);

  // An oversized request line gets a typed error and only *that*
  // connection is closed.
  const int hostile = connect_unix(sock);
  ASSERT_GE(hostile, 0);
  std::string huge(service::json::kMaxRequestBytes + 128, 'z');
  (void)::send(hostile, huge.data(), huge.size(), MSG_NOSIGNAL);
  const std::string err = recv_line(hostile);
  EXPECT_NE(err.find("protocol_error"), std::string::npos) << err;
  ASSERT_TRUE(send_line(live2, R"({"op":"stats"})"));  // others unaffected
  EXPECT_NE(recv_line(live2).find("\"ok\":true"), std::string::npos);

  // SIGTERM-style stop flag: the loop notices and returns.
  stop.store(true);
  server.join();
  for (const int fd : {stalled, live, live2, hostile})
    if (fd >= 0) ::close(fd);
  std::remove(sock.c_str());
}

#endif  // __unix__

// ------------------------------------------------------------------- soak

// Multi-client concurrency: several threads submit, wait, cancel and poll
// concurrently. Run under TSan in CI; assertions here check conservation
// of jobs across terminal states.
TEST(ServiceTest, ConcurrentMultiClientSoak) {
  ServiceOptions o = test_options();
  o.queue_capacity = 128;
  JobService svc(o);
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 6;
  std::atomic<int> terminal{0};
  std::atomic<int> admitted{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        JobSpec spec;
        spec.nx = 16 + 8 * ((c + j) % 2);  // two shapes: exercises batching
        spec.steps = 2;
        spec.dim_x = 8;
        spec.dim_y = 8;
        spec.dim_t = 1;
        spec.priority = j % 3;
        spec.seed = static_cast<std::uint64_t>(c * 100 + j);
        const auto id = svc.submit(spec);
        ASSERT_TRUE(id.ok()) << id.status().to_string();
        admitted.fetch_add(1);
        if (j % 3 == 2) svc.cancel(id.value());  // mid-queue or mid-run
        const auto done = svc.wait(id.value(), 60'000);
        ASSERT_TRUE(done.has_value());
        EXPECT_TRUE(done->state == JobState::kDone ||
                    done->state == JobState::kCancelled)
            << to_string(done->state);
        if (done->state == JobState::kDone) {
          EXPECT_EQ(done->result.steps_done, 2);
          EXPECT_NE(done->result.crc, 0u);
        }
        terminal.fetch_add(1);
        (void)svc.stats();  // concurrent reader
        (void)svc.info(id.value());
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_TRUE(svc.drain(60'000));
  EXPECT_EQ(terminal.load(), kClients * kJobsPerClient);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(admitted.load()));
  EXPECT_EQ(s.completed + s.cancelled + s.failed + s.expired,
            s.submitted);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
}

// ---------------------------------------------------------------- tenancy

// Governor unit tests drive the clock explicitly (nanosecond timestamps),
// so every token-bucket and breaker transition is exact, not sleep-based.
TEST(TenancyTest, TokenBucketEdges) {
  const std::int64_t t0 = 1'000'000'000;
  JobSpec spec;
  spec.tenant = "edge";

  {
    // Zero burst: zero capacity, every job over-costs the bucket.
    TenancyOptions opts;
    opts.rate = 10.0;
    opts.burst = 0.0;
    TenantGovernor gov;
    gov.configure(opts);
    const AdmitDecision d = gov.admit(spec, 1.0, 0, 8, t0);
    EXPECT_EQ(d.reason, AdmitReason::kQuota);
    EXPECT_GE(d.retry_after_ms, 1);
  }
  {
    // Cost above the bucket capacity: no amount of waiting admits it, and
    // the hint escalates instead of promising a refill that cannot come.
    TenancyOptions opts;
    opts.rate = 10.0;
    opts.burst = 5.0;
    TenantGovernor gov;
    gov.configure(opts);
    EXPECT_EQ(gov.admit(spec, 100.0, 0, 8, t0).reason, AdmitReason::kQuota);
    const AdmitDecision again = gov.admit(spec, 100.0, 0, 8, t0);
    EXPECT_EQ(again.reason, AdmitReason::kQuota);
    EXPECT_GE(again.retry_after_ms, 1);
  }
  {
    // Refill boundary: a fresh bucket holds one second of rate; a drained
    // one readmits exactly when rate * elapsed covers the cost.
    TenancyOptions opts;
    opts.rate = 10.0;  // burst < 0 defaults to one second = 10 units
    TenantGovernor gov;
    gov.configure(opts);
    EXPECT_TRUE(gov.admit(spec, 10.0, 0, 8, t0).ok());  // full bucket
    const AdmitDecision drained = gov.admit(spec, 10.0, 0, 8, t0);
    EXPECT_EQ(drained.reason, AdmitReason::kQuota);
    EXPECT_EQ(drained.retry_after_ms, 1000);  // deficit / rate, exactly
    EXPECT_EQ(gov.admit(spec, 10.0, 0, 8, t0 + 999'000'000).reason,
              AdmitReason::kQuota);
    EXPECT_TRUE(gov.admit(spec, 10.0, 0, 8, t0 + 2'000'000'000).ok());
    // A failed queue push refunds the tokens it debited.
    const AdmitDecision full = gov.queue_full(spec, 10.0, t0 + 2'000'000'000);
    EXPECT_EQ(full.reason, AdmitReason::kQueueFull);
    EXPECT_TRUE(gov.admit(spec, 10.0, 0, 8, t0 + 2'000'000'000).ok());
  }
}

TEST(TenancyTest, BrownoutSpillsOnlyLowPriority) {
  const std::int64_t t0 = 1'000'000'000;
  TenancyOptions opts;
  opts.brownout = 0.5;
  TenantGovernor gov;
  gov.configure(opts);
  JobSpec lo;
  lo.tenant = "lo";
  JobSpec hi = lo;
  hi.priority = 1;
  EXPECT_TRUE(gov.admit(lo, 1.0, 3, 8, t0).ok());  // below threshold
  const AdmitDecision d = gov.admit(lo, 1.0, 4, 8, t0);
  EXPECT_EQ(d.reason, AdmitReason::kBrownout);
  EXPECT_GE(d.retry_after_ms, 1);
  EXPECT_TRUE(gov.admit(hi, 1.0, 7, 8, t0).ok());  // priority > 0 rides out
}

TEST(TenancyTest, QuarantineTripAndHalfOpenRecovery) {
  const std::int64_t t0 = 1'000'000'000;
  TenancyOptions opts;
  opts.quarantine_kills = 2;
  opts.quarantine_cooldown_ms = 100;
  TenantGovernor gov;
  gov.configure(opts);
  JobSpec spec;
  spec.tenant = "poison";
  spec.nx = 32;

  EXPECT_FALSE(gov.note_poison(spec, t0));  // first loss: below threshold
  EXPECT_TRUE(gov.quarantine_check(spec, t0).ok());
  EXPECT_TRUE(gov.note_poison(spec, t0));  // second loss trips the breaker
  EXPECT_EQ(gov.quarantine_trips(), 1u);
  const AdmitDecision open = gov.quarantine_check(spec, t0);
  EXPECT_EQ(open.reason, AdmitReason::kQuarantined);
  EXPECT_GE(open.retry_after_ms, 1);
  EXPECT_EQ(gov.admit(spec, 1.0, 0, 8, t0).reason, AdmitReason::kQuarantined);

  // The breaker is per (tenant, shape): a different shape is unaffected.
  JobSpec other = spec;
  other.nx = 48;
  EXPECT_TRUE(gov.admit(other, 1.0, 0, 8, t0).ok());

  // Cooldown elapsed: exactly one half-open probe is admitted; a second
  // request while the probe is pending stays rejected.
  const std::int64_t t1 = t0 + 150 * 1'000'000;
  EXPECT_TRUE(gov.quarantine_check(spec, t1).ok());
  EXPECT_EQ(gov.quarantine_check(spec, t1).reason, AdmitReason::kQuarantined);

  // The probe dies: half-open re-opens on a single loss.
  EXPECT_TRUE(gov.note_poison(spec, t1));
  EXPECT_EQ(gov.quarantine_check(spec, t1 + 1).reason, AdmitReason::kQuarantined);
  EXPECT_EQ(gov.quarantine_trips(), 2u);

  // Cool down again; this time the probe completes and the breaker closes.
  const std::int64_t t2 = t1 + 150 * 1'000'000;
  EXPECT_TRUE(gov.quarantine_check(spec, t2).ok());
  gov.note_finished(spec, /*was_running=*/true, JobState::kDone);
  EXPECT_TRUE(gov.quarantine_check(spec, t2 + 1).ok());
  EXPECT_TRUE(gov.admit(spec, 1.0, 0, 8, t2 + 1).ok());
  EXPECT_GE(gov.quarantined_total(), 3u);
}

TEST(TenancyTest, RejectionMessagesRoundtrip) {
  const std::string msg =
      service::format_rejection(AdmitReason::kBrownout, "queue hot", 250);
  std::string reason;
  std::int64_t ms = 0;
  ASSERT_TRUE(service::parse_rejection(msg, &reason, &ms));
  EXPECT_EQ(reason, "brownout");
  EXPECT_EQ(ms, 250);
  EXPECT_FALSE(service::parse_rejection("queue full", &reason, &ms));
  EXPECT_FALSE(service::parse_rejection("bogus: x; retry_after_ms=5", &reason, &ms));
}

// DRR within a priority class: equal weights and costs alternate strictly
// between a flooder and a light tenant until the light one drains.
TEST(JobQueue, DrrAlternatesTenantsWithinClass) {
  BoundedJobQueue q(16);
  for (std::uint64_t i = 1; i <= 6; ++i)
    ASSERT_TRUE(q.try_push({i, 0, i, 0, 0xA, 1, 1.0, 0}));
  for (std::uint64_t i = 11; i <= 13; ++i)
    ASSERT_TRUE(q.try_push({i, 0, i, 0, 0xB, 1, 1.0, 0}));
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 9; ++i) order.push_back(q.pop_wait(0)->id);
  const std::vector<std::uint64_t> want{1, 11, 2, 12, 3, 13, 4, 5, 6};
  EXPECT_EQ(order, want);
}

// Weighted DRR: a weight-3 tenant drains three pops for every one of a
// weight-1 tenant (equal costs), deterministically.
TEST(JobQueue, DrrWeightedShares) {
  BoundedJobQueue q(32);
  for (std::uint64_t i = 1; i <= 15; ++i)
    ASSERT_TRUE(q.try_push({i, 0, i, 0, 0xA, 3, 1.0, 0}));
  for (std::uint64_t i = 21; i <= 35; ++i)
    ASSERT_TRUE(q.try_push({i, 0, i, 0, 0xB, 1, 1.0, 0}));
  int a = 0;
  int b = 0;
  for (int i = 0; i < 20; ++i) {
    const auto item = q.pop_wait(0);
    ASSERT_TRUE(item.has_value());
    (item->tenant == 0xA ? a : b)++;
  }
  EXPECT_EQ(a, 15);
  EXPECT_EQ(b, 5);
}

// Fair scheduling never reorders across priority classes: a flooded class 0
// cannot delay class 1, and DRR applies only inside each class.
TEST(JobQueue, DrrNeverReordersAcrossPriorityClasses) {
  BoundedJobQueue q(8);
  ASSERT_TRUE(q.try_push({1, 0, 1, 0, 0xA, 1, 1.0, 0}));
  ASSERT_TRUE(q.try_push({2, 0, 2, 0, 0xA, 1, 1.0, 0}));
  ASSERT_TRUE(q.try_push({3, 0, 3, 0, 0xB, 1, 1.0, 0}));
  ASSERT_TRUE(q.try_push({4, 1, 4, 0, 0xC, 1, 1.0, 0}));
  EXPECT_EQ(q.pop_wait(0)->id, 4u);  // priority still dominates
  EXPECT_EQ(q.pop_wait(0)->id, 1u);  // then DRR within class 0
  EXPECT_EQ(q.pop_wait(0)->id, 3u);
  EXPECT_EQ(q.pop_wait(0)->id, 2u);
}

TEST(JobQueue, TakeExpiredShedsOnlyPastDeadline) {
  BoundedJobQueue q(8);
  ASSERT_TRUE(q.try_push({1, 0, 1, 0, 0, 1, 1.0, 100}));
  ASSERT_TRUE(q.try_push({2, 0, 2, 0, 0, 1, 1.0, 0}));  // no deadline
  ASSERT_TRUE(q.try_push({3, 0, 3, 0, 0, 1, 1.0, 500}));
  const auto shed = q.take_expired(200);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], 1u);
  EXPECT_EQ(q.size(), 2u);
  const auto shed2 = q.take_expired(500);
  ASSERT_EQ(shed2.size(), 1u);
  EXPECT_EQ(shed2[0], 3u);
  EXPECT_EQ(q.pop_wait(0)->id, 2u);
}

TEST(ServiceTest, TenantQuotaRejectsWithRetryHint) {
  ServiceOptions o = test_options();
  o.tenancy.rate = 1e-9;  // bucket capacity ~0: every job over-costs it
  JobService svc(o);
  JobSpec spec;
  spec.nx = 16;
  spec.steps = 1;
  spec.tenant = "greedy";
  const auto r = svc.submit(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), fault::ErrorCode::kUnavailable);
  std::string reason;
  std::int64_t ms = 0;
  ASSERT_TRUE(service::parse_rejection(r.status().message(), &reason, &ms))
      << r.status().message();
  EXPECT_EQ(reason, "quota");
  EXPECT_GE(ms, 1);
  const auto s = svc.stats();
  EXPECT_TRUE(s.tenancy);
  EXPECT_EQ(s.rejected, 1u);
  ASSERT_EQ(s.tenants.size(), 1u);
  EXPECT_EQ(s.tenants[0].name, "greedy");
  EXPECT_EQ(s.tenants[0].rejected, 1u);
}

// Deadline-expired jobs are shed while still queued (at the next submit),
// not lazily at pop time, so dead work never occupies queue slots.
TEST(ServiceTest, ExpiredJobsShedWhileQueued) {
  JobService svc(test_options());
  svc.set_paused(true);
  JobSpec doomed;
  doomed.nx = 16;
  doomed.steps = 1;
  doomed.deadline_ms = 20;
  const auto a = svc.submit(doomed);
  ASSERT_TRUE(a.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  JobSpec fresh;
  fresh.nx = 16;
  fresh.steps = 1;
  const auto b = svc.submit(fresh);  // triggers the eager shed
  ASSERT_TRUE(b.ok());
  const auto da = svc.wait(a.value(), 5'000);  // resolved while still paused
  ASSERT_TRUE(da.has_value());
  EXPECT_EQ(da->state, JobState::kExpired);
  EXPECT_EQ(da->result.steps_done, 0);
  EXPECT_NE(da->result.message.find("shed"), std::string::npos);
  const auto s = svc.stats();
  EXPECT_EQ(s.shed_expired, 1u);
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.queue_depth, 1u);
  svc.set_paused(false);
  EXPECT_TRUE(svc.drain(30'000));
}

TEST(ServiceTest, TenantSpecValidation) {
  JobService svc(test_options());
  JobSpec bad;
  bad.nx = 16;
  bad.steps = 1;
  bad.tenant = "has space";
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad.tenant = std::string(65, 'a');
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad.tenant = "ok-tenant.1:x";
  bad.tenant_weight = 17;
  EXPECT_EQ(svc.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad.tenant_weight = 3;
  const auto id = svc.submit(bad);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  EXPECT_TRUE(svc.wait(id.value(), 30'000).has_value());
}

// Queue-full is structured even with tenancy off: clients always get a
// typed reason plus a retry_after_ms hint they can obey mechanically.
TEST(ProtocolTest, StructuredQueueFullRejectionCarriesRetryHint) {
  ServiceOptions o = test_options();
  o.queue_capacity = 1;
  JobService svc(o);
  svc.set_paused(true);
  bool shutdown = false;
  const std::string submit =
      R"({"op":"submit","kernel":"7pt","n":16,"steps":1,"tenant":"t1"})";
  EXPECT_NE(service::handle_line(svc, submit, &shutdown).find("\"ok\":true"),
            std::string::npos);
  const std::string full = service::handle_line(svc, submit, &shutdown);
  EXPECT_NE(full.find("\"ok\":false"), std::string::npos) << full;
  EXPECT_NE(full.find("\"reason\":\"queue_full\""), std::string::npos) << full;
  EXPECT_NE(full.find("\"retry_after_ms\":"), std::string::npos) << full;
  svc.set_paused(false);
  EXPECT_TRUE(svc.drain(30'000));
}

TEST(ProtocolTest, MalformedAndOversizedTenantFieldsAreTypedErrors) {
  JobService svc(test_options());
  svc.set_paused(true);
  bool shutdown = false;
  // Unterminated tenant string: parser-level protocol error, no crash.
  const std::string r1 = service::handle_line(
      svc, R"({"op":"submit","kernel":"7pt","n":16,"tenant":"never-ends)",
      &shutdown);
  EXPECT_NE(r1.find("\"ok\":false"), std::string::npos) << r1;
  // Oversized tenant string (beyond kMaxStringField): bounds violation.
  std::string big = R"({"op":"submit","kernel":"7pt","n":16,"tenant":")";
  big.append(service::json::kMaxStringField + 8, 't');
  big += "\"}";
  const std::string r2 = service::handle_line(svc, big, &shutdown);
  EXPECT_NE(r2.find("\"ok\":false"), std::string::npos) << r2;
  // In-bounds JSON string but over the 64-char tenant cap: typed mismatch.
  std::string cap = R"({"op":"submit","kernel":"7pt","n":16,"steps":1,"tenant":")";
  cap.append(80, 't');
  cap += "\"}";
  const std::string r3 = service::handle_line(svc, cap, &shutdown);
  EXPECT_NE(r3.find("mismatch"), std::string::npos) << r3;
  // Bad charset and out-of-range weight are likewise typed mismatches.
  const std::string r4 = service::handle_line(
      svc, R"({"op":"submit","kernel":"7pt","n":16,"steps":1,"tenant":"a b"})",
      &shutdown);
  EXPECT_NE(r4.find("mismatch"), std::string::npos) << r4;
  const std::string r5 = service::handle_line(
      svc,
      R"({"op":"submit","kernel":"7pt","n":16,"steps":1,"tenant":"ok","weight":99})",
      &shutdown);
  EXPECT_NE(r5.find("mismatch"), std::string::npos) << r5;
  EXPECT_FALSE(shutdown);
  svc.set_paused(false);
}

}  // namespace
}  // namespace s35
