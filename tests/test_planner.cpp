#include <gtest/gtest.h>

#include "core/planner.h"

namespace s35::core {
namespace {

using machine::Precision;

// Section V-A2: "with R ~10% of dim, κ3D is around 1.95X, and for R ~20%,
// κ3D increases to 4.62X".
TEST(Kappa, Paper3dExamples) {
  EXPECT_NEAR(kappa_3d(10, 100, 100, 100), 1.95, 0.01);
  EXPECT_NEAR(kappa_3d(20, 100, 100, 100), 4.62, 0.01);
}

// Section V-A3: "κ2.5D is around 1.2X ... increases to only 1.77X, around
// 2.6X reduction over 3D blocking". The comparison uses the same on-chip
// capacity: the 3D example blocks 100^3 elements (C/E = 1e6), while 2.5D
// only keeps 2R+1 planes resident, so its tiles grow to
// sqrt(1e6 / (2R+1)) per side — that larger tile is where the win comes
// from.
TEST(Kappa, Paper25dExamples) {
  const double capacity_elems = 100.0 * 100.0 * 100.0;
  const long d10 = max_dim_25d(static_cast<std::size_t>(capacity_elems), 1, 10);
  const long d20 = max_dim_25d(static_cast<std::size_t>(capacity_elems), 1, 20);
  EXPECT_NEAR(kappa_25d(10, d10, d10), 1.2, 0.05);
  EXPECT_NEAR(kappa_25d(20, d20, d20), 1.77, 0.05);
  EXPECT_NEAR(kappa_3d(20, 100, 100, 100) / kappa_25d(20, d20, d20), 2.6, 0.05);
}

TEST(Kappa, Reduces35dTo25dAtDimT1) {
  EXPECT_DOUBLE_EQ(kappa_35d(2, 1, 50, 70), kappa_25d(2, 50, 70));
}

TEST(Kappa, MonotoneInDimTAndRadius) {
  double prev = 1.0;
  for (int t = 1; t <= 5; ++t) {
    const double k = kappa_35d(1, t, 64, 64);
    EXPECT_GT(k, prev);
    prev = k;
  }
  EXPECT_GT(kappa_35d(2, 2, 64, 64), kappa_35d(1, 2, 64, 64));
}

// Section VI-A CPU parameters for the 7-point stencil:
//   SP: dim_t = 2, dim = 360, κ ≈ 1.02;  DP: dim = 256, κ ≈ 1.04.
TEST(Planner, SevenPointCpuSp) {
  const auto p = plan(machine::core_i7(), machine::seven_point(), Precision::kSingle,
                      {.round_multiple = 4});
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.dim_t, 2);  // ceil(0.5 / 0.294) = 2
  EXPECT_EQ(p.dim_x, 360);
  EXPECT_EQ(p.dim_y, 360);
  EXPECT_NEAR(p.kappa, 1.02, 0.005);
  EXPECT_EQ(p.planes_per_instance, 4);  // 2R+2
  EXPECT_LE(p.buffer_bytes, 4u << 20);  // eq. 1 capacity constraint
}

TEST(Planner, SevenPointCpuDp) {
  const auto p = plan(machine::core_i7(), machine::seven_point(), Precision::kDouble,
                      {.round_multiple = 4});
  EXPECT_EQ(p.dim_t, 2);
  EXPECT_EQ(p.dim_x, 256);
  EXPECT_NEAR(p.kappa, 1.04, 0.01);
}

// Section VI-B CPU parameters for LBM:
//   dim_t >= 2.9 -> 3;  SP: dim = 64, κ ≈ 1.21;  DP: dim = 44, κ ≈ 1.34.
TEST(Planner, LbmCpuSp) {
  const auto p = plan(machine::core_i7(), machine::lbm_d3q19(), Precision::kSingle,
                      {.round_multiple = 4});
  EXPECT_EQ(p.dim_t, 3);  // ceil(0.88 / 0.294) = 3
  EXPECT_EQ(p.dim_x, 64);
  EXPECT_NEAR(p.kappa, 1.21, 0.02);
}

TEST(Planner, LbmCpuDp) {
  const auto p = plan(machine::core_i7(), machine::lbm_d3q19(), Precision::kDouble,
                      {.round_multiple = 4});
  EXPECT_EQ(p.dim_t, 3);
  EXPECT_EQ(p.dim_x, 44);
  EXPECT_NEAR(p.kappa, 1.34, 0.02);
}

// Section VI-A: 4D blocking comparison overheads — 1.18X SP / 1.21X DP for
// the 7-pt stencil, 2.03X SP / 2.71X DP for LBM (3D cube blocks from the
// same 4 MB budget, dim_t as planned).
TEST(Kappa, Paper4dOverheads) {
  // 7-pt SP: cube edge = cbrt(4MB / (2 buffers * 4B)) with dim_t = 2.
  const long e7sp = max_dim_3d((4u << 20) / 2, 4);
  EXPECT_NEAR(kappa_4d(1, 2, e7sp, e7sp, e7sp), 1.18, 0.07);
  const long e7dp = max_dim_3d((4u << 20) / 2, 8);
  EXPECT_NEAR(kappa_4d(1, 2, e7dp, e7dp, e7dp), 1.21, 0.07);
  const long elsp = max_dim_3d((4u << 20) / 2, 80);
  EXPECT_NEAR(kappa_4d(1, 3, elsp, elsp, elsp), 2.03, 0.35);
  const long eldp = max_dim_3d((4u << 20) / 2, 160);
  EXPECT_NEAR(kappa_4d(1, 3, eldp, eldp, eldp), 2.71, 0.6);
}

TEST(Planner, MinDimT) {
  EXPECT_EQ(min_dim_t(0.5, 0.294), 2);
  EXPECT_EQ(min_dim_t(0.88, 0.294), 3);   // "dim_t >= 2.9"
  EXPECT_EQ(min_dim_t(0.88, 0.1425), 7);  // LBM on GPU: "dim_t >= 6.1"
  EXPECT_EQ(min_dim_t(0.1, 0.294), 1);    // already compute bound
}

TEST(Planner, MaxDims) {
  // 2.5D: floor(sqrt(C / (E(2R+1)))).
  EXPECT_EQ(max_dim_25d(4u << 20, 4, 1), 591);
  // 3.5D eq. 4 at R=1, dim_t=2, E=4: sqrt(4MB/32) = 362.
  EXPECT_EQ(max_dim_35d(4u << 20, 4, 1, 2), 362);
  // 3D: floor(cbrt(C/E)).
  EXPECT_EQ(max_dim_3d(1u << 20, 4), 64);
}

TEST(Planner, InfeasibleWhenCapacityTiny) {
  machine::Descriptor tiny = machine::core_i7();
  tiny.blocking_capacity_bytes = 2048;  // ~GPU-shared-memory scale
  const auto p = plan(tiny, machine::lbm_d3q19(), Precision::kSingle,
                      {.round_multiple = 1});
  EXPECT_FALSE(p.feasible);
}

TEST(Planner, ForcedDimT) {
  const auto p = plan(machine::core_i7(), machine::seven_point(), Precision::kSingle,
                      {.round_multiple = 4, .force_dim_t = 4});
  EXPECT_EQ(p.dim_t, 4);
  EXPECT_LT(p.dim_x, 360);  // larger dim_t shrinks the tiles
}

TEST(Planner, RooflinePredictionsOrdering) {
  const auto p = plan(machine::core_i7(), machine::seven_point(), Precision::kSingle,
                      {.round_multiple = 4});
  // 3.5D must beat no-blocking, and by roughly the paper's 1.5X.
  EXPECT_GT(p.predicted_mups, p.predicted_mups_no_blocking);
  EXPECT_NEAR(p.predicted_mups / p.predicted_mups_no_blocking, 1.5, 0.6);
}

TEST(Roofline, PicksMinOfBounds) {
  const auto m = machine::core_i7();
  // Very high traffic: bandwidth bound.
  const double bw_bound = roofline_mups(m, Precision::kSingle, false, 1000.0, 16.0);
  EXPECT_NEAR(bw_bound, 22.0e9 / 1000.0 / 1e6, 1e-6);
  // Tiny traffic: compute bound.
  const double c_bound = roofline_mups(m, Precision::kSingle, false, 0.001, 16.0);
  EXPECT_NEAR(c_bound, 102.0e9 / 16.0 / 1e6, 1e-3);
}

}  // namespace
}  // namespace s35::core
