#include <gtest/gtest.h>

#include "machine/kernel_sig.h"
#include "stencil/stencil_varcoef.h"
#include "stencil/sweeps.h"

namespace s35::stencil {
namespace {

// Scalar reference (independent loops, same arithmetic).
template <typename T>
void reference_steps(const Stencil7VarCoef<T>& s0, grid::Grid3<T>& grid, int steps) {
  grid::Grid3<T> tmp(grid.nx(), grid.ny(), grid.nz());
  for (int step = 0; step < steps; ++step) {
    tmp.copy_from(grid);
    for (long z = 1; z < grid.nz() - 1; ++z)
      for (long y = 1; y < grid.ny() - 1; ++y) {
        const auto s = s0.with_row(y, z);
        const auto acc = [&](int dz, int dy) -> const T* {
          return grid.row(y + dy, z + dz);
        };
        T* out = tmp.row(y, z);
        for (long x = 1; x < grid.nx() - 1; ++x) out[x] = s.point(acc, x);
      }
    grid.copy_from(tmp);
  }
}

class VarCoefFixture : public ::testing::Test {
 protected:
  static constexpr long kN = 36;

  void SetUp() override {
    alpha_ = std::make_unique<grid::Grid3<float>>(kN, kN, kN);
    beta_ = std::make_unique<grid::Grid3<float>>(kN, kN, kN);
    // Smooth, spatially varying, stable coefficients.
    alpha_->fill_with([](long x, long y, long z) {
      return 0.3f + 0.05f * std::sin(0.2f * x + 0.1f * y + 0.15f * z);
    });
    beta_->fill_with([](long x, long y, long z) {
      return 0.08f + 0.02f * std::cos(0.12f * x - 0.2f * y + 0.07f * z);
    });
    stencil_ = Stencil7VarCoef<float>{alpha_.get(), beta_.get(), 0, 0};
  }

  std::unique_ptr<grid::Grid3<float>> alpha_;
  std::unique_ptr<grid::Grid3<float>> beta_;
  Stencil7VarCoef<float> stencil_;
};

TEST_F(VarCoefFixture, AllVariantsMatchReferenceBitExact) {
  const int steps = 5;
  grid::Grid3<float> expected(kN, kN, kN);
  expected.fill_random(12, -1.0f, 1.0f);
  reference_steps(stencil_, expected, steps);

  core::Engine35 engine(3);
  const struct {
    Variant v;
    SweepConfig cfg;
    const char* name;
  } runs[] = {
      {Variant::kNaive, {}, "naive"},
      {Variant::kSpatial3D, {.dim_x = 16}, "3d"},
      {Variant::kBlocked4D, {.dim_t = 2, .dim_x = 18}, "4d"},
      {Variant::kBlocked35D, {.dim_t = 2, .dim_x = 20}, "3.5d"},
      {Variant::kBlocked35D, {.dim_t = 3, .dim_x = 24}, "3.5d_t3"},
  };
  for (const auto& r : runs) {
    grid::GridPair<float> pair(kN, kN, kN);
    pair.src().fill_random(12, -1.0f, 1.0f);
    run_sweep(r.v, stencil_, pair, steps, r.cfg, engine);
    EXPECT_EQ(grid::count_mismatches(expected, pair.src()), 0) << r.name;
  }
}

// With constant coefficient fields the variable-coefficient kernel must
// reproduce the plain Stencil7 bit-for-bit.
TEST_F(VarCoefFixture, ConstantFieldsEqualPlainStencil) {
  alpha_->fill(0.4f);
  beta_->fill(0.1f);

  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 20;

  grid::GridPair<float> vc(kN, kN, kN), plain(kN, kN, kN);
  vc.src().fill_random(3);
  plain.src().fill_random(3);
  run_sweep(Variant::kBlocked35D, stencil_, vc, 4, cfg, engine);
  run_sweep(Variant::kBlocked35D, default_stencil7<float>(), plain, 4, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(vc.src(), plain.src()), 0);
}

TEST(VarCoefSig, GammaReflectsCoefficientStreams) {
  const auto k = machine::seven_point_varcoef();
  EXPECT_DOUBLE_EQ(k.bytes_sp, 16.0);
  EXPECT_DOUBLE_EQ(k.ops(), 18.0);
  // Higher gamma than the constant-coefficient kernel: blocking matters
  // even more.
  EXPECT_GT(k.gamma(machine::Precision::kSingle),
            machine::seven_point().gamma(machine::Precision::kSingle));
}

TEST(ForRow, PlainKernelsPassThrough) {
  const auto s = default_stencil7<float>();
  const auto t = for_row(s, 5, 7);
  EXPECT_EQ(t.alpha, s.alpha);
  EXPECT_EQ(t.beta, s.beta);
  static_assert(!RowAwareStencil<Stencil7<float>>);
  static_assert(RowAwareStencil<Stencil7VarCoef<float>>);
}

}  // namespace
}  // namespace s35::stencil
