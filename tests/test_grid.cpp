#include <gtest/gtest.h>

#include <cstdint>

#include "grid/grid3.h"

namespace s35::grid {
namespace {

TEST(PaddedPitch, RoundsUpToCacheLineMultiples) {
  EXPECT_EQ(padded_pitch(16, 4), 16);    // 64 B exactly
  EXPECT_EQ(padded_pitch(17, 4), 32);    // next 64 B multiple
  EXPECT_EQ(padded_pitch(1, 8), 8);      // 8 doubles per line
  EXPECT_EQ(padded_pitch(9, 8), 16);
  EXPECT_EQ(padded_pitch(64, 1), 64);
  EXPECT_EQ(padded_pitch(65, 1), 128);
}

TEST(Grid3, DimensionsAndPitch) {
  Grid3<float> g(10, 7, 5);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.ny(), 7);
  EXPECT_EQ(g.nz(), 5);
  EXPECT_EQ(g.pitch(), 16);
  EXPECT_EQ(g.plane_stride(), 16 * 7);
  EXPECT_EQ(g.num_points(), 350);
}

TEST(Grid3, RowsAreCacheLineAligned) {
  Grid3<double> g(11, 4, 3);
  for (long z = 0; z < g.nz(); ++z)
    for (long y = 0; y < g.ny(); ++y)
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(y, z)) % 64, 0u);
}

TEST(Grid3, AtMatchesRowIndexing) {
  Grid3<float> g(5, 4, 3);
  g.fill_with([](long x, long y, long z) { return float(100 * z + 10 * y + x); });
  for (long z = 0; z < 3; ++z)
    for (long y = 0; y < 4; ++y)
      for (long x = 0; x < 5; ++x) {
        EXPECT_EQ(g.at(x, y, z), float(100 * z + 10 * y + x));
        EXPECT_EQ(g.row(y, z)[x], g.at(x, y, z));
      }
}

TEST(Grid3, FillRandomIsPitchIndependentAndDeterministic) {
  Grid3<double> a(10, 6, 4);
  Grid3<double> b(10, 6, 4);
  a.fill_random(123);
  b.fill_random(123);
  EXPECT_EQ(count_mismatches(a, b), 0);
  b.fill_random(124);
  EXPECT_GT(count_mismatches(a, b), 0);
}

TEST(Grid3, CopyFrom) {
  Grid3<float> a(8, 8, 8), b(8, 8, 8);
  a.fill_random(9, -1.0f, 1.0f);
  b.copy_from(a);
  EXPECT_EQ(count_mismatches(a, b), 0);
}

TEST(Grid3, MaxAbsDiff) {
  Grid3<float> a(4, 4, 4), b(4, 4, 4);
  a.fill(1.0f);
  b.copy_from(a);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b.at(2, 3, 1) = 1.5f;
  EXPECT_FLOAT_EQ(static_cast<float>(max_abs_diff(a, b)), 0.5f);
}

TEST(GridPair, SwapExchangesRoles) {
  GridPair<float> pair(4, 4, 4);
  pair.src().fill(1.0f);
  pair.dst().fill(2.0f);
  EXPECT_EQ(pair.src().at(0, 0, 0), 1.0f);
  pair.swap();
  EXPECT_EQ(pair.src().at(0, 0, 0), 2.0f);
  pair.swap();
  EXPECT_EQ(pair.src().at(0, 0, 0), 1.0f);
}

TEST(Grid3, BytesAccountsForPadding) {
  Grid3<float> g(10, 7, 5);
  EXPECT_EQ(g.bytes(), static_cast<std::size_t>(16) * 7 * 5 * sizeof(float));
}

// The first-touch (parallel zero-fill) constructor must observably equal the
// serial one: same dims, all points zero including the row padding.
TEST(Grid3, FirstTouchCtorIsZeroFilled) {
  parallel::ThreadTeam team(3);
  Grid3<float> g(17, 9, 5, team);
  EXPECT_EQ(g.nx(), 17);
  EXPECT_EQ(g.ny(), 9);
  EXPECT_EQ(g.nz(), 5);
  const Grid3<float> serial(17, 9, 5);
  EXPECT_EQ(count_mismatches(serial, g), 0);
  for (std::size_t i = 0; i < g.bytes() / sizeof(float); ++i) {
    ASSERT_EQ(g.data()[i], 0.0f) << i;
  }

  GridPair<float> pair(8, 8, 4, team);
  EXPECT_EQ(pair.src().at(7, 7, 3), 0.0f);
  EXPECT_EQ(pair.dst().at(0, 0, 0), 0.0f);
}

}  // namespace
}  // namespace s35::grid
