#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/barrier.h"

namespace s35::parallel {
namespace {

// Stress a barrier: T threads increment a shared phase counter in lockstep;
// any barrier failure shows up as a thread observing a wrong phase.
void run_phase_lockstep(Barrier& barrier, int threads, int rounds) {
  std::vector<std::atomic<int>> phase(static_cast<std::size_t>(threads));
  for (auto& p : phase) p.store(0);

  std::atomic<bool> ok{true};
  auto body = [&](int tid) {
    for (int r = 0; r < rounds; ++r) {
      phase[static_cast<std::size_t>(tid)].store(r + 1, std::memory_order_release);
      barrier.arrive_and_wait(tid);
      // After the barrier every thread must have published phase r+1.
      for (int t = 0; t < threads; ++t) {
        if (phase[static_cast<std::size_t>(t)].load(std::memory_order_acquire) < r + 1) {
          ok.store(false);
        }
      }
      barrier.arrive_and_wait(tid);
    }
  };

  std::vector<std::thread> workers;
  for (int t = 1; t < threads; ++t) workers.emplace_back(body, t);
  body(0);
  for (auto& w : workers) w.join();
  EXPECT_TRUE(ok.load());
}

class BarrierP : public ::testing::TestWithParam<std::tuple<BarrierKind, int>> {};

TEST_P(BarrierP, PhaseLockstep) {
  const auto [kind, threads] = GetParam();
  auto barrier = make_barrier(kind, threads);
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->num_threads(), threads);
  run_phase_lockstep(*barrier, threads, 200);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BarrierP,
    ::testing::Combine(::testing::Values(BarrierKind::kSpin, BarrierKind::kTournament,
                                         BarrierKind::kPthread),
                       ::testing::Values(1, 2, 3, 4, 7, 8)));

TEST(SpinBarrier, SingleThreadNeverBlocks) {
  SpinBarrier b(1);
  for (int i = 0; i < 10000; ++i) b.arrive_and_wait(0);
}

TEST(TournamentBarrier, SingleThreadNeverBlocks) {
  TournamentBarrier b(1);
  for (int i = 0; i < 10000; ++i) b.arrive_and_wait(0);
}

// Reuse across many epochs with non-power-of-two team sizes exercises the
// tournament bracket's bye handling.
TEST(TournamentBarrier, NonPowerOfTwoTeams) {
  for (int threads : {3, 5, 6, 7}) {
    TournamentBarrier b(threads);
    run_phase_lockstep(b, threads, 300);
  }
}

}  // namespace
}  // namespace s35::parallel
