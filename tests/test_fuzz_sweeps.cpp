#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "lbm/sweeps.h"
#include "stencil/sweeps.h"

namespace s35 {
namespace {

// Randomized configuration sweeps (seeded, reproducible): random grid
// shapes, tile shapes, temporal depths, thread counts, variants and modes,
// always checked bit-exactly against the naive sweep. Catches corner cases
// the hand-picked parameter tables miss (degenerate tiles, dim_t > steps,
// tiles wider than the domain, prime-sized grids...).

stencil::Variant random_stencil_variant(SplitMix64& rng) {
  constexpr stencil::Variant kAll[] = {
      stencil::Variant::kSpatial3D,  stencil::Variant::kSpatial25D,
      stencil::Variant::kTemporalOnly, stencil::Variant::kBlocked4D,
      stencil::Variant::kBlocked35D,
  };
  return kAll[rng.below(sizeof(kAll) / sizeof(kAll[0]))];
}

TEST(FuzzStencil, RandomConfigsMatchNaive) {
  SplitMix64 rng(20260706);
  for (int trial = 0; trial < 30; ++trial) {
    const long nx = 5 + static_cast<long>(rng.below(40));
    const long ny = 5 + static_cast<long>(rng.below(40));
    const long nz = 3 + static_cast<long>(rng.below(30));
    const int steps = 1 + static_cast<int>(rng.below(6));
    const int threads = 1 + static_cast<int>(rng.below(6));
    const stencil::Variant v = random_stencil_variant(rng);

    stencil::SweepConfig cfg;
    cfg.dim_t = 1 + static_cast<int>(rng.below(4));
    cfg.dim_x = 5 + static_cast<long>(rng.below(60));  // may exceed the domain
    cfg.dim_y = 5 + static_cast<long>(rng.below(60));
    cfg.dim_z = 5 + static_cast<long>(rng.below(20));
    cfg.serialized = rng.below(2) == 0;
    cfg.streaming_stores = rng.below(2) == 0;
    // Kernel knobs: fast path and prefetch on/off, random ISA request
    // (dispatch clamps to what this build and CPU support). allow_fma stays
    // off — these trials assert bit-exactness against the naive sweep.
    cfg.kernel.fast_path = rng.below(2) == 0;
    cfg.kernel.prefetch = rng.below(2) == 0;
    constexpr simd::Isa kIsas[] = {simd::Isa::kScalar, simd::Isa::kSse,
                                   simd::Isa::kAvx, simd::Isa::kAvx2};
    cfg.kernel.isa = kIsas[rng.below(4)];
    // Keep tiles feasible: dim > 2*R*dim_t unless covering the axis.
    if (cfg.dim_x <= 2 * cfg.dim_t) cfg.dim_x = 2 * cfg.dim_t + 2;
    if (cfg.dim_y <= 2 * cfg.dim_t) cfg.dim_y = 2 * cfg.dim_t + 2;
    if (cfg.dim_z <= 2 * cfg.dim_t) cfg.dim_z = 2 * cfg.dim_t + 2;

    const std::string label = std::string(stencil::to_string(v)) + " " +
                              std::to_string(nx) + "x" + std::to_string(ny) + "x" +
                              std::to_string(nz) + " steps=" + std::to_string(steps) +
                              " dt=" + std::to_string(cfg.dim_t) +
                              " tile=" + std::to_string(cfg.dim_x) + "x" +
                              std::to_string(cfg.dim_y) +
                              " thr=" + std::to_string(threads) +
                              (cfg.serialized ? " ser" : "") + " isa=" +
                              simd::to_string(cfg.kernel.isa) +
                              (cfg.kernel.fast_path ? " fast" : " generic");

    const auto stencil = stencil::default_stencil7<float>();
    const std::uint64_t seed = rng.next_u64();

    grid::GridPair<float> expected(nx, ny, nz);
    expected.src().fill_random(seed, -1.0f, 1.0f);
    core::Engine35 ref_engine(1);
    stencil::run_sweep(stencil::Variant::kNaive, stencil, expected, steps, {},
                       ref_engine);

    grid::GridPair<float> got(nx, ny, nz);
    got.src().fill_random(seed, -1.0f, 1.0f);
    core::Engine35 engine(threads);
    stencil::run_sweep_auto(v, stencil, got, steps, cfg, engine);

    ASSERT_EQ(grid::count_mismatches(expected.src(), got.src()), 0) << label;
  }
}

TEST(FuzzLbm, RandomConfigsMatchNaive) {
  SplitMix64 rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    const long nx = 8 + static_cast<long>(rng.below(18));
    const long ny = 8 + static_cast<long>(rng.below(18));
    const long nz = 6 + static_cast<long>(rng.below(14));
    const int steps = 1 + static_cast<int>(rng.below(5));
    const int threads = 1 + static_cast<int>(rng.below(5));
    const bool use_4d = rng.below(3) == 0;

    lbm::SweepConfig cfg;
    cfg.dim_t = 1 + static_cast<int>(rng.below(3));
    cfg.dim_x = std::max<long>(2 * cfg.dim_t + 2, 6 + static_cast<long>(rng.below(24)));
    cfg.dim_y = std::max<long>(2 * cfg.dim_t + 2, 6 + static_cast<long>(rng.below(24)));
    cfg.dim_z = std::max<long>(2 * cfg.dim_t + 2, 6 + static_cast<long>(rng.below(12)));
    cfg.serialized = rng.below(2) == 0;
    constexpr simd::Isa kIsas[] = {simd::Isa::kScalar, simd::Isa::kSse,
                                   simd::Isa::kAvx, simd::Isa::kAvx2};
    cfg.kernel.isa = kIsas[rng.below(4)];

    lbm::Geometry geom(nx, ny, nz);
    geom.set_box_walls();
    if (rng.below(2) == 0) geom.set_lid();
    if (rng.below(2) == 0 && nx > 8 && ny > 8 && nz > 8) {
      geom.set_solid_box(nx / 3, nx / 3 + 2, ny / 3, ny / 3 + 2, nz / 3, nz / 3 + 2);
    }
    geom.finalize();

    lbm::BgkParams<float> prm;
    prm.omega = 0.6f + 0.1f * static_cast<float>(rng.below(12));
    prm.u_wall[0] = 0.02f * static_cast<float>(rng.below(4));
    prm.force[0] = rng.below(2) == 0 ? 0.0f : 1e-5f;

    lbm::LatticePair<float> expected(nx, ny, nz);
    expected.src().init_equilibrium();
    lbm::LatticePair<float> got(nx, ny, nz);
    got.src().init_equilibrium();

    core::Engine35 ref_engine(1);
    lbm::run_lbm(lbm::Variant::kNaive, geom, prm, expected, steps, {}, ref_engine);
    core::Engine35 engine(threads);
    lbm::run_lbm_auto(use_4d ? lbm::Variant::kBlocked4D : lbm::Variant::kBlocked35D,
                      geom, prm, got, steps, cfg, engine);

    long bad = 0;
    for (int i = 0; i < lbm::kQ && bad == 0; ++i)
      for (long z = 0; z < nz; ++z)
        for (long y = 0; y < ny; ++y)
          for (long x = 0; x < nx; ++x) {
            const float a = expected.src().at(i, x, y, z);
            const float b = got.src().at(i, x, y, z);
            if (std::memcmp(&a, &b, sizeof(float)) != 0) ++bad;
          }
    ASSERT_EQ(bad, 0) << "trial " << trial << " " << nx << "x" << ny << "x" << nz
                      << " dt=" << cfg.dim_t << " 4d=" << use_4d
                      << " isa=" << simd::to_string(cfg.kernel.isa);
  }
}

// Tile-parallel ablation mode must agree with the default fine-grained
// scheduling bit-for-bit.
TEST(FuzzStencil, TileParallelModeMatches) {
  SplitMix64 rng(31415);
  for (int trial = 0; trial < 8; ++trial) {
    const long n = 24 + static_cast<long>(rng.below(24));
    const int dim_t = 1 + static_cast<int>(rng.below(3));
    const long dim = std::max<long>(2 * dim_t + 2, 10 + static_cast<long>(rng.below(20)));
    const int steps = dim_t;  // single pass
    const std::uint64_t seed = rng.next_u64();
    const auto stencil = stencil::default_stencil7<float>();

    grid::GridPair<float> a(n, n, n), b(n, n, n);
    a.src().fill_random(seed);
    b.src().fill_random(seed);

    core::Engine35 engine(3);
    stencil::SweepConfig cfg;
    cfg.dim_t = dim_t;
    cfg.dim_x = dim;
    stencil::run_sweep(stencil::Variant::kBlocked35D, stencil, a, steps, cfg, engine);

    const core::Tiling tiling(n, n, dim, dim, 1, dim_t);
    const core::TemporalSchedule sched(n, 1, dim_t);
    engine.run_pass_tile_parallel(
        [&] {
          return stencil::StencilSlabKernel<stencil::Stencil7<float>, float>(
              stencil, b.src(), b.dst(), dim, dim, dim_t, sched.planes_per_instance());
        },
        tiling, sched);
    b.swap();

    ASSERT_EQ(grid::count_mismatches(a.src(), b.src()), 0)
        << "n=" << n << " dim=" << dim << " dt=" << dim_t;
  }
}

}  // namespace
}  // namespace s35
