#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "core/engine.h"

namespace s35::core {
namespace {

// Recording kernel: verifies region coverage and dependency ordering at the
// engine level, independent of any real stencil arithmetic.
class RecordingKernel {
 public:
  explicit RecordingKernel(long nx, long ny, long nz, int dim_t)
      : nx_(nx), ny_(ny), nz_(nz), dim_t_(dim_t) {}

  void execute(const Tile& tile, const Step& step, long y, long x0, long x1) {
    std::lock_guard<std::mutex> lock(mutex_);
    EXPECT_GE(y, 0);
    EXPECT_LT(y, ny_);
    EXPECT_GE(x0, tile.load.x.begin);
    EXPECT_LE(x1, tile.load.x.end);
    EXPECT_LT(x0, x1);
    EXPECT_GE(step.z, 0);
    EXPECT_LT(step.z, nz_);
    coverage_[{step.t, step.z}] += x1 - x0;
    if (step.to_external) {
      EXPECT_EQ(step.t, dim_t_);
      for (long x = x0; x < x1; ++x)
        external_written_.insert(step.z * nx_ * ny_ + y * nx_ + x);
    }
  }

  // Total elements touched per (t, z) across all tiles.
  const std::map<std::pair<int, long>, long>& coverage() const { return coverage_; }
  const std::set<long>& external_written() const { return external_written_; }

 private:
  long nx_, ny_, nz_;
  int dim_t_;
  std::mutex mutex_;
  std::map<std::pair<int, long>, long> coverage_;
  std::set<long> external_written_;
};

class EngineP : public ::testing::TestWithParam<std::tuple<int, int, bool, long>> {};

TEST_P(EngineP, ExternalOutputCoversWholeDomainExactlyOnce) {
  const auto [threads, dim_t, serialized, dim] = GetParam();
  const long nx = 21, ny = 17, nz = 13;
  const int radius = 1;
  if (dim < nx && dim <= 2L * radius * dim_t) GTEST_SKIP();

  Engine35 engine(threads);
  const Tiling tiling(nx, ny, dim, dim, radius, dim_t);
  const TemporalSchedule sched(nz, radius, dim_t, serialized);
  RecordingKernel kernel(nx, ny, nz, dim_t);
  engine.run_pass(kernel, tiling, sched);

  // Every cell of the output grid written exactly once.
  EXPECT_EQ(kernel.external_written().size(),
            static_cast<std::size_t>(nx * ny * nz));

  // Every plane of every buffered instance covered (loads: full tiles).
  for (long z = 0; z < nz; ++z) {
    const auto it = kernel.coverage().find({0, z});
    ASSERT_NE(it, kernel.coverage().end()) << "load plane " << z;
    EXPECT_GE(it->second, nx * ny);  // >= because tiles overlap
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineP,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Bool(),
                                            ::testing::Values<long>(9, 12, 100)));

TEST(Engine35, TeamSizeExposed) {
  Engine35 engine(3);
  EXPECT_EQ(engine.num_threads(), 3);
}

}  // namespace
}  // namespace s35::core
