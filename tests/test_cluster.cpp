// Cluster plane: TCP transport framing, two-node routing with a mid-flight
// node SIGKILL (zero lost jobs, zero duplicate terminals, bit-exact against
// the single-node reference), cross-node plan-cache replication, and the
// typed-unavailable shutdown paths of both the frame and NDJSON transports.
//
// The failover tests fork real node processes; this suite must NOT run
// under ThreadSanitizer (TSan does not support multithreaded fork), so
// CI's TSan leg excludes it by name.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "cluster/tcp.h"
#include "machine/descriptor.h"
#include "service/protocol.h"
#include "service/service.h"
#include "service/wire.h"

namespace s35 {
namespace {

namespace wire = service::wire;
using cluster::NodeOptions;
using cluster::Router;
using cluster::RouterOptions;
using service::JobService;
using service::JobSpec;
using service::JobState;
using service::ServiceOptions;

// Deterministic machine identity: no host probing, identical plans on every
// node and in the reference run — the precondition for cross-process
// bit-exactness assertions.
ServiceOptions node_service_options() {
  ServiceOptions o;
  o.threads = 2;
  o.mach = machine::core_i7();
  return o;
}

// Multi-pass job resolved through the planner (dim_* = 0), so the plan
// replication path is exercised alongside execution.
JobSpec cluster_spec() {
  JobSpec spec;
  spec.nx = 20;
  spec.steps = 6;
  spec.seed = 1234;
  return spec;
}

// Fault-free in-process reference CRC for `spec` under the same options.
std::uint32_t reference_crc(const JobSpec& spec) {
  JobService svc(node_service_options());
  const auto id = svc.submit(spec);
  EXPECT_TRUE(id.ok());
  const auto done = svc.wait(id.value());
  EXPECT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kDone) << done->result.message;
  return done->result.crc;
}

// A node pre-bound on an ephemeral port. Binding before forking lets the
// test compute ring placement (and arm the right node's kill) while the
// parent still knows every address.
struct BoundNode {
  int lfd = -1;
  std::string address;
};

BoundNode bind_node() {
  BoundNode b;
  int port = 0;
  b.lfd = cluster::tcp_listen("127.0.0.1", 0, &port);
  EXPECT_GE(b.lfd, 0);
  b.address = "127.0.0.1:" + std::to_string(port);
  return b;
}

pid_t fork_node(const BoundNode& b, NodeOptions opts) {
  opts.name = b.address;
  const pid_t pid = ::fork();
  if (pid == 0) {
    static std::atomic<bool> never{false};
    ::_exit(cluster::serve_node(b.lfd, opts, &never));
  }
  ::close(b.lfd);
  return pid;
}

void reap_node(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

// -------------------------------------------------------------------- tcp

TEST(TcpTest, SplitHostPortValidation) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(cluster::split_host_port("127.0.0.1:7401", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7401);
  EXPECT_TRUE(cluster::split_host_port("localhost:0", &host, &port));
  EXPECT_EQ(port, 0);

  EXPECT_FALSE(cluster::split_host_port("", &host, &port));
  EXPECT_FALSE(cluster::split_host_port("noport", &host, &port));
  EXPECT_FALSE(cluster::split_host_port(":7401", &host, &port));
  EXPECT_FALSE(cluster::split_host_port("h:", &host, &port));
  EXPECT_FALSE(cluster::split_host_port("h:99999", &host, &port));
  EXPECT_FALSE(cluster::split_host_port("h:-1", &host, &port));
  EXPECT_FALSE(cluster::split_host_port("h:7x1", &host, &port));
}

TEST(TcpTest, ListenConnectAcceptFrameRoundtrip) {
  int port = 0;
  const int lfd = cluster::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_GE(lfd, 0);
  ASSERT_GT(port, 0);

  const int cfd = cluster::tcp_connect("127.0.0.1", port, 2000);
  ASSERT_GE(cfd, 0);
  int afd = -1;
  for (int i = 0; i < 200 && afd < 0; ++i) {
    afd = cluster::tcp_accept(lfd);
    if (afd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(afd, 0);

  // wire.h frames survive the TCP hop in both directions.
  ASSERT_TRUE(wire::write_frame(cfd, wire::FrameType::kBeat,
                                "{\"job\":0,\"progress\":7}"));
  std::string acc;
  wire::Frame f;
  ASSERT_EQ(wire::read_frame(afd, &acc, &f, 2000), 1);
  EXPECT_EQ(f.type, wire::FrameType::kBeat);
  EXPECT_EQ(f.payload, "{\"job\":0,\"progress\":7}");

  ASSERT_TRUE(wire::write_frame(afd, wire::FrameType::kDrain, "{}"));
  std::string acc2;
  ASSERT_EQ(wire::read_frame(cfd, &acc2, &f, 2000), 1);
  EXPECT_EQ(f.type, wire::FrameType::kDrain);

  ::close(cfd);
  ::close(afd);
  ::close(lfd);
}

TEST(TcpTest, ConnectToClosedPortFailsFast) {
  int port = 0;
  const int lfd = cluster::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_GE(lfd, 0);
  ::close(lfd);  // nothing listens there anymore
  EXPECT_LT(cluster::tcp_connect("127.0.0.1", port, 500), 0);
}

// ------------------------------------------------------------------- node

// Stop is typed, not abrupt: a connected router receives kHello on accept
// and a kReject {"error":"unavailable"} frame — never a bare EOF — when the
// node shuts down.
TEST(NodeTest, StopSendsTypedRejectBeforeClose) {
  int port = 0;
  const int lfd = cluster::tcp_listen("127.0.0.1", 0, &port);
  ASSERT_GE(lfd, 0);

  std::atomic<bool> stop{false};
  NodeOptions opts;
  opts.name = "127.0.0.1:" + std::to_string(port);
  opts.beat_ms = 20;
  opts.service = node_service_options();
  std::thread node([&] { cluster::serve_node(lfd, opts, &stop); });

  const int fd = cluster::tcp_connect("127.0.0.1", port, 2000);
  ASSERT_GE(fd, 0);
  std::string acc;
  wire::Frame f;
  ASSERT_EQ(wire::read_frame(fd, &acc, &f, 2000), 1);
  EXPECT_EQ(f.type, wire::FrameType::kHello);
  EXPECT_NE(f.payload.find("\"node\":\"" + opts.name + "\""),
            std::string::npos)
      << f.payload;
  EXPECT_NE(f.payload.find("\"jobs\":"), std::string::npos);

  stop.store(true);
  bool rejected = false;
  for (int i = 0; i < 100 && !rejected; ++i) {
    const int got = wire::read_frame(fd, &acc, &f, 200);
    if (got < 0) break;      // EOF before the reject would fail the test
    if (got == 0) continue;  // node poll round still in flight
    if (f.type == wire::FrameType::kReject) {
      rejected = true;
      EXPECT_NE(f.payload.find("\"error\":\"unavailable\""), std::string::npos)
          << f.payload;
    }
    // Beats between stop and goodbye are fine; skip them.
  }
  EXPECT_TRUE(rejected);
  node.join();
  ::close(fd);
}

// ----------------------------------------------------------------- router

// The acceptance scenario: two nodes, a batch of same-shape jobs, the
// shape's ring owner SIGKILLed mid-flight. Every job must complete exactly
// once, bit-identical to the single-node reference, with the in-flight work
// resumed from its pass-boundary checkpoint on the surviving node — which
// serves the dead node's plan from the replicated cache without re-tuning.
TEST(ClusterTest, NodeKillMidFlightFailsOverBitExact) {
  const JobSpec spec = cluster_spec();
  const std::uint32_t ref = reference_crc(spec);

  const BoundNode a = bind_node();
  const BoundNode b = bind_node();

  // Compute placement the same way the router will, then arm the
  // deterministic SIGKILL on the shape's owner: it dies at its first
  // pass boundary, with in-flight jobs and a durable pass-1 checkpoint.
  cluster::HashRing ring(64);
  ring.add(a.address);
  ring.add(b.address);
  const std::string victim = ring.owner(spec.shape_key());

  NodeOptions nopts;
  nopts.beat_ms = 20;
  nopts.window = 2;
  nopts.service = node_service_options();

  NodeOptions killer = nopts;
  killer.kill_at_pass = 0;
  const pid_t pid_a = fork_node(a, a.address == victim ? killer : nopts);
  const pid_t pid_b = fork_node(b, b.address == victim ? killer : nopts);

  RouterOptions ropts;
  ropts.nodes = {a.address, b.address};
  ropts.beat_ms = 20;
  ropts.hang_ms = 10000;
  ropts.connect_timeout_ms = 2000;
  ropts.window = 2;
  ropts.vnodes = 64;
  ropts.checkpoint_dir = ::testing::TempDir();
  ropts.checkpoint_every = 1;

  Router router(ropts);
  constexpr int kJobs = 4;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    const auto id = router.submit(spec);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(id.value());
  }

  bool any_resumed = false;
  bool any_plan_hit = false;
  for (const std::uint64_t id : ids) {
    const auto done = router.wait(id, 60000);
    ASSERT_TRUE(done.has_value()) << "job " << id << " did not finish";
    EXPECT_EQ(done->state, JobState::kDone) << done->result.message;
    EXPECT_EQ(done->result.crc, ref) << "job " << id << " diverged";
    any_resumed |= done->result.resumed_steps > 0;
    any_plan_hit |= done->result.plan_cache_hit;
  }

  const auto stats = router.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_GE(stats.worker_deaths, 1u);
  EXPECT_GE(stats.failovers, 1u);
  // The plan was tuned once (on the victim) and served from cache
  // everywhere else — including the failover on the survivor.
  EXPECT_GE(stats.plan_hits, 1u);
  EXPECT_TRUE(any_resumed) << "no job resumed from a failover checkpoint";
  EXPECT_TRUE(any_plan_hit) << "no job was served a replicated plan";

  router.shutdown();
  reap_node(pid_a);
  reap_node(pid_b);
}

// Plan replication across router generations: a plan tuned on node A is
// persisted in the router's authoritative cache and served to a cold node B
// by a later router — B completes the job as a plan-cache hit, without
// re-tuning, bit-identical.
TEST(ClusterTest, PlanTunedOnOneNodeServedOnAnother) {
  const JobSpec spec = cluster_spec();
  const std::string pc = ::testing::TempDir() + "/s35_router_plans.bin";
  ::unlink(pc.c_str());

  NodeOptions nopts;
  nopts.beat_ms = 20;
  nopts.service = node_service_options();

  std::uint32_t crc_a = 0;
  {
    const BoundNode a = bind_node();
    const pid_t pid_a = fork_node(a, nopts);
    RouterOptions ropts;
    ropts.nodes = {a.address};
    ropts.beat_ms = 20;
    ropts.connect_timeout_ms = 2000;
    ropts.plan_cache_path = pc;
    Router router(ropts);
    const auto id = router.submit(spec);
    ASSERT_TRUE(id.ok());
    const auto done = router.wait(id.value(), 60000);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::kDone) << done->result.message;
    EXPECT_FALSE(done->result.plan_cache_hit);  // first tune, anywhere
    crc_a = done->result.crc;
    router.shutdown();  // persists the authoritative cache
    reap_node(pid_a);
  }

  const BoundNode b = bind_node();
  const pid_t pid_b = fork_node(b, nopts);
  RouterOptions ropts;
  ropts.nodes = {b.address};
  ropts.beat_ms = 20;
  ropts.connect_timeout_ms = 2000;
  ropts.plan_cache_path = pc;  // reloaded; warm-pushed to B on hello
  Router router(ropts);
  const auto id = router.submit(spec);
  ASSERT_TRUE(id.ok());
  const auto done = router.wait(id.value(), 60000);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kDone) << done->result.message;
  EXPECT_TRUE(done->result.plan_cache_hit)
      << "node B re-tuned instead of using the replicated plan";
  EXPECT_EQ(done->result.crc, crc_a);
  EXPECT_GE(router.stats().plan_hits, 1u);
  router.shutdown();
  reap_node(pid_b);
}

// Terminal records are kept queryable only up to terminal_retention; older
// ones — and every terminal job's on-disk failover checkpoint — are
// dropped, so a long-lived router does not grow per submitted job forever.
TEST(ClusterTest, TerminalRetentionEvictsRecordsAndCheckpoints) {
  const std::string dir = ::testing::TempDir() + "/s35_retention_ckpt";
  ::mkdir(dir.c_str(), 0755);

  NodeOptions nopts;
  nopts.beat_ms = 20;
  nopts.service = node_service_options();
  const BoundNode a = bind_node();
  const pid_t pid = fork_node(a, nopts);

  RouterOptions ropts;
  ropts.nodes = {a.address};
  ropts.beat_ms = 20;
  ropts.connect_timeout_ms = 2000;
  ropts.checkpoint_dir = dir;
  ropts.terminal_retention = 2;
  Router router(ropts);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto id = router.submit(cluster_spec());
    ASSERT_TRUE(id.ok());
    const auto done = router.wait(id.value(), 60000);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::kDone) << done->result.message;
    ids.push_back(id.value());
  }

  // The two oldest terminal records aged out; the newest two remain.
  EXPECT_FALSE(router.info(ids[0]).has_value());
  EXPECT_FALSE(router.info(ids[1]).has_value());
  EXPECT_TRUE(router.info(ids[2]).has_value());
  EXPECT_TRUE(router.info(ids[3]).has_value());

  // Checkpoints are unlinked at the terminal transition (which can land
  // just after wait() wakes — poll briefly).
  for (const std::uint64_t id : ids) {
    const std::string path = dir + "/job-" + std::to_string(id) + ".ckpt";
    bool gone = false;
    for (int i = 0; i < 100 && !gone; ++i) {
      gone = ::access(path.c_str(), F_OK) != 0;
      if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(gone) << path << " not unlinked after terminal";
  }
  router.shutdown();
  reap_node(pid);
}

// Typed admission errors surface through the router like any backend's.
TEST(ClusterTest, InvalidSpecRejectedAtAdmission) {
  RouterOptions ropts;
  ropts.nodes = {"127.0.0.1:1"};  // never dialed: rejection happens first
  Router router(ropts);
  JobSpec bad;
  bad.kernel = "not-a-kernel";
  const auto id = router.submit(bad);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(router.stats().rejected, 1u);
  router.shutdown();
}

// --------------------------------------------------------------- protocol

// serve_unix shutdown is typed for NDJSON clients too: a client with a
// request in flight receives {"error":"unavailable"} before the socket
// closes, not an abrupt EOF.
TEST(ProtocolTest, ServeUnixShutdownRejectsMidRequestClients) {
  JobService backend(node_service_options());
  const std::string path = ::testing::TempDir() + "/s35_cluster_reject.sock";
  ::unlink(path.c_str());
  std::atomic<bool> stop{false};
  std::thread srv([&] { service::serve_unix(backend, path, &stop); });

  int fd = -1;
  for (int i = 0; i < 200 && fd < 0; ++i) {
    const int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(s, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(s, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
      fd = s;
    } else {
      ::close(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_GE(fd, 0);

  // Half a request — no newline — so the server holds buffered input for
  // this client when the stop flag lands.
  const char* partial = "{\"op\":\"stats\"";
  ASSERT_EQ(::send(fd, partial, std::strlen(partial), 0),
            static_cast<ssize_t>(std::strlen(partial)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  srv.join();

  std::string got;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    got.append(buf, static_cast<std::size_t>(n));
  EXPECT_NE(got.find("\"error\":\"unavailable\""), std::string::npos) << got;
  ::close(fd);
  backend.shutdown();
}

}  // namespace
}  // namespace s35
