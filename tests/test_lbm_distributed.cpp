#include <gtest/gtest.h>

#include "lbm/distributed.h"

namespace s35::lbm {
namespace {

long mismatches(const Lattice<float>& a, const Lattice<float>& b) {
  long bad = 0;
  for (int i = 0; i < kQ; ++i)
    for (long z = 0; z < a.nz(); ++z)
      for (long y = 0; y < a.ny(); ++y)
        for (long x = 0; x < a.nx(); ++x) {
          const float va = a.at(i, x, y, z);
          const float vb = b.at(i, x, y, z);
          if (std::memcmp(&va, &vb, sizeof(float)) != 0) ++bad;
        }
  return bad;
}

class LbmDistributedP : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LbmDistributedP, MatchesSingleDomainBitExact) {
  const auto [ranks, dim_t, steps] = GetParam();
  const long nx = 16, ny = 14, nz = 24;

  Geometry geom(nx, ny, nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.set_solid_box(6, 9, 5, 8, 10, 13);  // obstacle crossing a rank cut
  geom.finalize();

  BgkParams<float> prm;
  prm.omega = 1.3f;
  prm.u_wall[0] = 0.06f;

  core::Engine35 engine(2);
  LatticePair<float> reference(nx, ny, nz);
  reference.src().init_equilibrium();
  SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 12;
  run_lbm(Variant::kBlocked35D, geom, prm, reference, steps, cfg, engine);

  DistributedLbmDriver<float> driver(geom, ranks, dim_t);
  Lattice<float> initial(nx, ny, nz);
  initial.init_equilibrium();
  driver.scatter(initial);
  driver.run(prm, steps, cfg, engine);
  Lattice<float> gathered(nx, ny, nz);
  driver.gather(gathered);

  EXPECT_EQ(mismatches(reference.src(), gathered), 0)
      << "ranks=" << ranks << " dim_t=" << dim_t << " steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LbmDistributedP,
                         ::testing::Values(std::tuple{1, 2, 4}, std::tuple{2, 2, 4},
                                           std::tuple{3, 2, 6}, std::tuple{2, 3, 7},
                                           std::tuple{4, 1, 3}));

TEST(LbmDistributed, CommVolumeAccounting) {
  const long n = 20;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.finalize();
  BgkParams<float> prm;
  prm.omega = 1.0f;

  DistributedLbmDriver<float> driver(geom, 2, 2);
  Lattice<float> init(n, n, n);
  init.init_equilibrium();
  driver.scatter(init);
  core::Engine35 engine(1);
  SweepConfig cfg;
  cfg.dim_t = 2;
  driver.run(prm, 4, cfg, engine);

  const auto& s = driver.stats();
  EXPECT_EQ(s.passes, 2u);
  EXPECT_EQ(s.messages, 2u * 2u);  // one face, both directions, per pass
  // 2 directions x 19 arrays x halo(2) planes x n rows x n floats per pass.
  EXPECT_EQ(s.bytes, 2ull * 2 * 19 * 2 * n * n * sizeof(float));
}

}  // namespace
}  // namespace s35::lbm
