#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stencil/periodic.h"

namespace s35::stencil {
namespace {

// Modular-arithmetic reference: wraps on periodic axes, frozen R-shell on
// the others (matching the library's Dirichlet semantics).
template <typename S, typename T>
class PeriodicReference {
  static constexpr long R = S::radius;

 public:
  PeriodicReference(long nx, long ny, long nz, bool px, bool py, bool pz)
      : nx_(nx), ny_(ny), nz_(nz), px_(px), py_(py), pz_(pz),
        u_(static_cast<std::size_t>(nx * ny * nz)), tmp_(u_.size()) {}

  T& at(long x, long y, long z) { return u_[idx(x, y, z)]; }

  void step(const S& s) {
    for (long z = 0; z < nz_; ++z)
      for (long y = 0; y < ny_; ++y)
        for (long x = 0; x < nx_; ++x) {
          if (frozen(x, y, z)) {
            tmp_[idx(x, y, z)] = u_[idx(x, y, z)];
            continue;
          }
          // Build a 3x3 row accessor over wrapped coordinates. Rows must be
          // contiguous in x for S::point, so materialize the needed window.
          T window[2 * R + 1][2 * R + 1][2 * R + 1];
          for (long dz = -R; dz <= R; ++dz)
            for (long dy = -R; dy <= R; ++dy)
              for (long dx = -R; dx <= R; ++dx)
                window[dz + R][dy + R][dx + R] =
                    u_[idx(wrap(x + dx, nx_, px_), wrap(y + dy, ny_, py_),
                           wrap(z + dz, nz_, pz_))];
          const auto acc = [&](int dz, int dy) -> const T* {
            return &window[dz + R][dy + R][0] - (x - R);  // global-x indexable
          };
          tmp_[idx(x, y, z)] = s.point(acc, x);
        }
    u_.swap(tmp_);
  }

 private:
  static long wrap(long v, long n, bool periodic) {
    if (!periodic) return v;  // caller guarantees in-range on frozen axes
    return (v + n) % n;
  }
  bool frozen(long x, long y, long z) const {
    return (!px_ && (x < R || x >= nx_ - R)) || (!py_ && (y < R || y >= ny_ - R)) ||
           (!pz_ && (z < R || z >= nz_ - R));
  }
  std::size_t idx(long x, long y, long z) const {
    return static_cast<std::size_t>((z * ny_ + y) * nx_ + x);
  }

  long nx_, ny_, nz_;
  bool px_, py_, pz_;
  std::vector<T> u_;
  std::vector<T> tmp_;
};

class StencilPeriodicP
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, int, int>> {};

TEST_P(StencilPeriodicP, MatchesModularReferenceBitExact) {
  const auto [px, py, pz, dim_t, steps] = GetParam();
  const long nx = 20, ny = 18, nz = 16;
  const auto stencil = default_stencil7<float>();

  PeriodicStencilDriver<Stencil7<float>, float>::Options opt;
  opt.periodic_x = px;
  opt.periodic_y = py;
  opt.periodic_z = pz;
  opt.dim_t = dim_t;
  PeriodicStencilDriver<Stencil7<float>, float> driver(nx, ny, nz, opt);
  PeriodicReference<Stencil7<float>, float> ref(nx, ny, nz, px, py, pz);

  SplitMix64 rng(99);
  for (long z = 0; z < nz; ++z)
    for (long y = 0; y < ny; ++y)
      for (long x = 0; x < nx; ++x) {
        const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
        driver.at(x, y, z) = v;
        ref.at(x, y, z) = v;
      }

  core::Engine35 engine(3);
  driver.run(stencil, steps, engine);
  for (int s = 0; s < steps; ++s) ref.step(stencil);

  long mismatches = 0;
  for (long z = 0; z < nz; ++z)
    for (long y = 0; y < ny; ++y)
      for (long x = 0; x < nx; ++x)
        if (driver.at(x, y, z) != ref.at(x, y, z)) ++mismatches;
  EXPECT_EQ(mismatches, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StencilPeriodicP,
    ::testing::Values(std::tuple{true, true, true, 2, 5},
                      std::tuple{true, true, true, 3, 7},
                      std::tuple{true, false, true, 2, 4},
                      std::tuple{false, true, false, 3, 6},
                      std::tuple{true, true, false, 1, 3}));

// On a fully periodic torus, cosine products are exact eigenvectors of the
// discrete 7-point operator: u(t) = lambda^t u(0) with
// lambda = alpha + 2 beta (cos kx + cos ky + cos kz). This pins the
// periodic machinery to machine precision.
TEST(StencilPeriodic, PlaneWaveEigenvalueDecay) {
  const long n = 24;
  const auto stencil = default_stencil7<double>();
  PeriodicStencilDriver<Stencil7<double>, double>::Options opt;
  opt.dim_t = 3;
  PeriodicStencilDriver<Stencil7<double>, double> driver(n, n, n, opt);

  const double kx = 2.0 * M_PI * 1 / n, ky = 2.0 * M_PI * 2 / n, kz = 2.0 * M_PI * 1 / n;
  driver.fill_with([&](long x, long y, long z) {
    return std::cos(kx * x) * std::cos(ky * y) * std::cos(kz * z);
  });

  const int steps = 10;
  core::Engine35 engine(2);
  driver.run(stencil, steps, engine);

  const double lambda =
      stencil.alpha + 2.0 * stencil.beta * (std::cos(kx) + std::cos(ky) + std::cos(kz));
  const double scale = std::pow(lambda, steps);
  double worst = 0.0;
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x) {
        const double expect =
            scale * std::cos(kx * x) * std::cos(ky * y) * std::cos(kz * z);
        worst = std::max(worst, std::abs(driver.at(x, y, z) - expect));
      }
  EXPECT_LT(worst, 1e-12);
}

// The 27-point kernel through the same periodic driver.
TEST(StencilPeriodic, TwentySevenPointMatchesReference) {
  const long n = 16;
  const auto stencil = default_stencil27<float>();
  PeriodicStencilDriver<Stencil27<float>, float>::Options opt;
  opt.dim_t = 2;
  PeriodicStencilDriver<Stencil27<float>, float> driver(n, n, n, opt);
  PeriodicReference<Stencil27<float>, float> ref(n, n, n, true, true, true);

  SplitMix64 rng(5);
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x) {
        const float v = static_cast<float>(rng.uniform(0.0, 1.0));
        driver.at(x, y, z) = v;
        ref.at(x, y, z) = v;
      }

  core::Engine35 engine(2);
  driver.run(stencil, 4, engine);
  for (int s = 0; s < 4; ++s) ref.step(stencil);

  long mismatches = 0;
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x)
        if (driver.at(x, y, z) != ref.at(x, y, z)) ++mismatches;
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace s35::stencil
