#include <gtest/gtest.h>

#include <cstdio>

#include "grid/checkpoint.h"
#include "lbm/sweeps.h"

namespace s35 {
namespace {

TEST(Checkpoint, GridRoundTrip) {
  const std::string path = ::testing::TempDir() + "/s35_grid.ckpt";
  grid::Grid3<double> a(13, 9, 7);
  a.fill_random(99, -5.0, 5.0);
  ASSERT_TRUE(grid::save_checkpoint(path, a));

  grid::Grid3<double> b(13, 9, 7);
  ASSERT_TRUE(grid::load_checkpoint(path, b));
  EXPECT_EQ(grid::count_mismatches(a, b), 0);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatches) {
  const std::string path = ::testing::TempDir() + "/s35_grid2.ckpt";
  grid::Grid3<float> a(8, 8, 8);
  a.fill_random(1);
  ASSERT_TRUE(grid::save_checkpoint(path, a));

  grid::Grid3<float> wrong_dims(8, 8, 9);
  EXPECT_FALSE(grid::load_checkpoint(path, wrong_dims));
  grid::Grid3<double> wrong_type(8, 8, 8);
  EXPECT_FALSE(grid::load_checkpoint(path, wrong_type));
  grid::Grid3<float> missing(8, 8, 8);
  EXPECT_FALSE(grid::load_checkpoint(::testing::TempDir() + "/nope.ckpt", missing));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "/s35_trunc.ckpt";
  grid::Grid3<float> a(16, 16, 16);
  a.fill_random(2);
  ASSERT_TRUE(grid::save_checkpoint(path, a));
  // Truncate to half.
  ASSERT_EQ(truncate(path.c_str(), 16 * 16 * 8 * sizeof(float)), 0);
  grid::Grid3<float> b(16, 16, 16);
  EXPECT_FALSE(grid::load_checkpoint(path, b));
  std::remove(path.c_str());
}

// probe_checkpoint on the debris an interrupted atomic replace can leave
// behind: the durable-save protocol is tmp + fsync + rename, so the only
// states a crash may expose are (a) the intact previous file, (b) a
// partial .tmp next to it, or (c) a file cut short by the filesystem
// after a torn rename. Probe must never trust (b) or (c).
TEST(Checkpoint, ProbeRejectsTruncatedMidReplaceStates) {
  const std::string path = ::testing::TempDir() + "/s35_probe.ckpt";
  grid::Grid3<float> a(12, 10, 8);
  a.fill_random(3);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, a, /*user_tag=*/5).ok());

  // Intact file: probe reports shape and the caller's tag.
  {
    const auto info = grid::probe_checkpoint(path);
    ASSERT_TRUE(info.ok()) << info.status().to_string();
    EXPECT_EQ(info.value().version, 2u);
    EXPECT_FALSE(info.value().lattice);
    EXPECT_EQ(info.value().nx, 12);
    EXPECT_EQ(info.value().ny, 10);
    EXPECT_EQ(info.value().nz, 8);
    EXPECT_EQ(info.value().user_tag, 5u);
  }
  // A partial .tmp (crash before rename) is header-only debris.
  {
    const std::string tmp = path + ".tmp";
    std::FILE* src = std::fopen(path.c_str(), "rb");
    std::FILE* dst = std::fopen(tmp.c_str(), "wb");
    ASSERT_TRUE(src != nullptr && dst != nullptr);
    char buf[64];  // header is 72 bytes: cut mid-header
    ASSERT_EQ(std::fread(buf, 1, sizeof buf, src), sizeof buf);
    ASSERT_EQ(std::fwrite(buf, 1, sizeof buf, dst), sizeof buf);
    std::fclose(src);
    std::fclose(dst);
    EXPECT_EQ(grid::probe_checkpoint(tmp).status().code(),
              fault::ErrorCode::kTruncated);
    std::remove(tmp.c_str());
  }
  // Payload cut short: the header promises more bytes than the file holds.
  {
    ASSERT_EQ(truncate(path.c_str(), 72 + 12 * 10 * 4 * sizeof(float)), 0);
    EXPECT_EQ(grid::probe_checkpoint(path).status().code(),
              fault::ErrorCode::kTruncated);
  }
  // Header itself cut short.
  {
    ASSERT_EQ(truncate(path.c_str(), 20), 0);
    EXPECT_EQ(grid::probe_checkpoint(path).status().code(),
              fault::ErrorCode::kTruncated);
  }
  std::remove(path.c_str());
}

// Restarting an LBM run from a checkpoint continues bit-exactly.
TEST(Checkpoint, LbmRestartBitExact) {
  const std::string path = ::testing::TempDir() + "/s35_latt.ckpt";
  const long n = 14;
  lbm::Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 1.2f;
  prm.u_wall[0] = 0.05f;
  core::Engine35 engine(2);
  lbm::SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 10;

  // Uninterrupted 8 steps.
  lbm::LatticePair<float> full(n, n, n);
  full.src().init_equilibrium();
  lbm::run_lbm(lbm::Variant::kBlocked35D, geom, prm, full, 8, cfg, engine);

  // 4 steps, checkpoint, restore into a fresh pair, 4 more.
  lbm::LatticePair<float> part(n, n, n);
  part.src().init_equilibrium();
  lbm::run_lbm(lbm::Variant::kBlocked35D, geom, prm, part, 4, cfg, engine);
  ASSERT_TRUE(grid::save_checkpoint_arrays(path, part.src(), lbm::kQ));

  lbm::LatticePair<float> resumed(n, n, n);
  ASSERT_TRUE(grid::load_checkpoint_arrays(path, resumed.src(), lbm::kQ));
  lbm::run_lbm(lbm::Variant::kBlocked35D, geom, prm, resumed, 4, cfg, engine);

  long bad = 0;
  for (int i = 0; i < lbm::kQ; ++i)
    for (long z = 0; z < n; ++z)
      for (long y = 0; y < n; ++y)
        for (long x = 0; x < n; ++x) {
          const float a = full.src().at(i, x, y, z);
          const float b = resumed.src().at(i, x, y, z);
          if (std::memcmp(&a, &b, sizeof(float)) != 0) ++bad;
        }
  EXPECT_EQ(bad, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s35
