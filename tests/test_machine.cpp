#include <gtest/gtest.h>

#include "machine/descriptor.h"
#include "machine/kernel_sig.h"

namespace s35::machine {
namespace {

// Table I: peak BW, peak Gops, bytes/op for Core i7 and GTX 285.
TEST(Descriptor, TableOneCorei7) {
  const Descriptor d = core_i7();
  EXPECT_DOUBLE_EQ(d.peak_bw_gbps, 30.0);
  EXPECT_DOUBLE_EQ(d.peak_sp_gops, 102.0);
  EXPECT_DOUBLE_EQ(d.peak_dp_gops, 51.0);
  EXPECT_NEAR(d.bytes_per_op(Precision::kSingle), 0.29, 0.005);
  EXPECT_NEAR(d.bytes_per_op(Precision::kDouble), 0.59, 0.005);
  EXPECT_DOUBLE_EQ(d.achievable_bw_gbps, 22.0);  // "we have measured 22 GB/s"
  EXPECT_EQ(d.llc_bytes, 8u << 20);
  EXPECT_EQ(d.blocking_capacity_bytes, 4u << 20);  // "C equal to 4MB"
  EXPECT_EQ(d.cores, 4);
}

TEST(Descriptor, TableOneGtx285) {
  const Descriptor d = gtx285();
  EXPECT_DOUBLE_EQ(d.peak_bw_gbps, 159.0);
  EXPECT_DOUBLE_EQ(d.peak_sp_gops, 1116.0);
  EXPECT_DOUBLE_EQ(d.peak_dp_gops, 93.0);
  EXPECT_NEAR(d.bytes_per_op(Precision::kSingle), 0.14, 0.005);
  EXPECT_NEAR(d.bytes_per_op(Precision::kDouble), 1.7, 0.02);
  // "actual bytes/op about 0.43 for SP and 3.44 for DP"
  EXPECT_NEAR(d.bytes_per_op(Precision::kSingle, true), 0.43, 0.01);
  EXPECT_NEAR(d.bytes_per_op(Precision::kDouble, true), 3.44, 0.03);
  EXPECT_DOUBLE_EQ(d.achievable_bw_gbps, 131.0);
  EXPECT_EQ(d.blocking_capacity_bytes, 16u << 10);
}

// Section IV-A1: 7-point stencil op/byte accounting.
TEST(KernelSig, SevenPoint) {
  const KernelSig k = seven_point();
  EXPECT_EQ(k.radius, 1);
  EXPECT_DOUBLE_EQ(k.ops(), 16.0);  // 2 mul + 6 add + 7 load + 1 store
  EXPECT_DOUBLE_EQ(k.bytes_sp, 8.0);
  EXPECT_DOUBLE_EQ(k.bytes_dp, 16.0);
  EXPECT_DOUBLE_EQ(k.gamma(Precision::kSingle), 0.5);
  EXPECT_DOUBLE_EQ(k.gamma(Precision::kDouble), 1.0);
  EXPECT_DOUBLE_EQ(k.bytes_no_reuse_sp, 32.0);  // "32 bytes in single precision"
  EXPECT_DOUBLE_EQ(k.bytes_no_reuse_dp, 64.0);
}

// Section IV-A2: 27-point stencil.
TEST(KernelSig, TwentySevenPoint) {
  const KernelSig k = twenty_seven_point();
  EXPECT_DOUBLE_EQ(k.ops(), 58.0);  // 4 mul + 26 add + 27 load + 1 store
  EXPECT_NEAR(k.gamma(Precision::kSingle), 0.14, 0.005);
  EXPECT_NEAR(k.gamma(Precision::kDouble), 0.28, 0.005);
}

// Section IV-B: D3Q19 LBM.
TEST(KernelSig, LbmD3Q19) {
  const KernelSig k = lbm_d3q19();
  EXPECT_DOUBLE_EQ(k.ops(), 259.0);  // 220 flops + 20 reads + 19 writes
  EXPECT_DOUBLE_EQ(k.flops, 220.0);
  EXPECT_DOUBLE_EQ(k.bytes_sp, 228.0);  // "a total of about 228 bytes in SP"
  EXPECT_DOUBLE_EQ(k.bytes_dp, 456.0);
  EXPECT_NEAR(k.gamma(Precision::kSingle), 0.88, 0.005);
  EXPECT_NEAR(k.gamma(Precision::kDouble), 1.75, 0.015);
  EXPECT_EQ(k.elem_bytes_sp, 80u);   // 19 dists + flag, 4 B each
  EXPECT_EQ(k.elem_bytes_dp, 160u);
}

// Section IV-C: boundedness classification — γ vs Γ per platform/precision.
TEST(KernelSig, BoundednessClassification) {
  const Descriptor cpu = core_i7();
  const Descriptor gpu = gtx285();
  const KernelSig s7 = seven_point();
  const KernelSig s27 = twenty_seven_point();
  const KernelSig lbm = lbm_d3q19();

  // 7-pt: SP and DP bandwidth-bound on CPU; SP bw-bound, DP compute-bound on GPU.
  EXPECT_GT(s7.gamma(Precision::kSingle), cpu.bytes_per_op(Precision::kSingle));
  EXPECT_GT(s7.gamma(Precision::kDouble), cpu.bytes_per_op(Precision::kDouble));
  EXPECT_GT(s7.gamma(Precision::kSingle), gpu.bytes_per_op(Precision::kSingle));
  EXPECT_LT(s7.gamma(Precision::kDouble), gpu.bytes_per_op(Precision::kDouble));

  // 27-pt: compute bound on both (SP).
  EXPECT_LT(s27.gamma(Precision::kSingle), cpu.bytes_per_op(Precision::kSingle) + 0.01);
  EXPECT_LE(s27.gamma(Precision::kSingle), gpu.bytes_per_op(Precision::kSingle));

  // LBM: SP bw-bound on both; DP bw-bound on CPU, compute-bound on GPU.
  EXPECT_GT(lbm.gamma(Precision::kSingle), cpu.bytes_per_op(Precision::kSingle));
  EXPECT_GT(lbm.gamma(Precision::kSingle), gpu.bytes_per_op(Precision::kSingle));
  EXPECT_GT(lbm.gamma(Precision::kDouble), cpu.bytes_per_op(Precision::kDouble));
  EXPECT_LT(lbm.gamma(Precision::kDouble), gpu.bytes_per_op(Precision::kDouble) + 0.1);
}

TEST(Descriptor, HostDetectsSomethingSane) {
  const Descriptor d = host();
  EXPECT_GE(d.cores, 1);
  EXPECT_GT(d.llc_bytes, 0u);
  EXPECT_GT(d.blocking_capacity_bytes, 0u);
  EXPECT_GT(d.achievable_bw_gbps, 0.0);
  EXPECT_GT(d.peak_sp_gops, 0.0);
}

}  // namespace
}  // namespace s35::machine
