#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>
#include <thread>

#include "core/planner.h"
#include "stencil/sweeps.h"
#include "telemetry/report.h"
#include "telemetry/telemetry.h"

namespace s35::telemetry {
namespace {

// The registry is process-global: every test starts from a clean, enabled
// slate and leaves collection off.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(TelemetryTest, ScopedPhaseChargesTidAndPhase) {
  {
    const ScopedPhase phase(3, Phase::kCompute);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  record_ns(3, Phase::kBarrierWait, 500);
  record_ns(7, Phase::kCompute, 1000);

  const Totals t3 = thread_totals(3);
  EXPECT_GE(t3.phase_seconds(Phase::kCompute), 0.002);
  EXPECT_EQ(t3.calls[static_cast<int>(Phase::kCompute)], 1u);
  EXPECT_DOUBLE_EQ(t3.phase_seconds(Phase::kBarrierWait), 500e-9);

  const Totals sum = aggregate();
  EXPECT_EQ(sum.calls[static_cast<int>(Phase::kCompute)], 2u);
  EXPECT_GE(sum.phase_seconds(Phase::kCompute), 0.002 + 1000e-9);
}

TEST_F(TelemetryTest, DisabledRecordsNothing) {
  set_enabled(false);
  {
    const ScopedPhase phase(0, Phase::kCompute);
  }
  record_ns(0, Phase::kCompute, 1000);
  add_external_cells(0, 10, 10);
  add_external_bytes(0, 64, 64);

  const Totals sum = aggregate();
  EXPECT_EQ(sum.calls[static_cast<int>(Phase::kCompute)], 0u);
  EXPECT_EQ(sum.cells_loaded, 0u);
  EXPECT_EQ(sum.bytes_read, 0u);
}

TEST_F(TelemetryTest, OutOfRangeTidIsDroppedNotCrashed) {
  record_ns(kMaxThreads + 5, Phase::kCompute, 1000);
  record_ns(-1, Phase::kCompute, 1000);
  add_external_cells(kMaxThreads, 7, 7);

  const Totals sum = aggregate();
  EXPECT_EQ(sum.calls[static_cast<int>(Phase::kCompute)], 0u);
  EXPECT_EQ(sum.cells_loaded, 0u);
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  record_ns(0, Phase::kRegion, 1000);
  add_external_cells(1, 5, 6);
  reset();
  const Totals sum = aggregate();
  EXPECT_EQ(sum.calls[static_cast<int>(Phase::kRegion)], 0u);
  EXPECT_EQ(sum.cells_loaded, 0u);
  EXPECT_EQ(sum.cells_stored, 0u);
}

// End-to-end through the engine: a 3.5D sweep must charge compute time,
// one region per thread per pass, barrier waits, and exact external cell
// counts (each cell loaded and stored once per dim_t-step round).
TEST_F(TelemetryTest, EngineSweepAccountsPhasesAndCells) {
  const long n = 32;
  const int steps = 4, dim_t = 2, threads = 2;
  const auto stencil = stencil::default_stencil7<float>();
  grid::GridPair<float> pair(n, n, n);
  pair.src().fill_random(11, -1.0f, 1.0f);
  core::Engine35 engine(threads);

  stencil::SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 16;
  run_sweep(stencil::Variant::kBlocked35D, stencil, pair, steps, cfg, engine);

  const Totals sum = aggregate();
  EXPECT_GT(sum.phase_seconds(Phase::kCompute), 0.0);
  EXPECT_GT(sum.phase_seconds(Phase::kRegion), 0.0);
  EXPECT_GT(sum.calls[static_cast<int>(Phase::kBarrierWait)], 0u);
  EXPECT_EQ(sum.calls[static_cast<int>(Phase::kRegion)],
            static_cast<std::uint64_t>(threads) * (steps / dim_t));
  // Plane streaming: every cell is stored out exactly once per round;
  // loads additionally cover inter-tile ghost overlap, bounded by the
  // eq. 2 ghost factor kappa.
  const std::uint64_t per_round = static_cast<std::uint64_t>(n) * n * n;
  const std::uint64_t rounds = steps / dim_t;
  EXPECT_EQ(sum.cells_stored, per_round * rounds);
  EXPECT_GE(sum.cells_loaded, per_round * rounds);
  const double kappa = core::kappa_35d(1, dim_t, cfg.dim_x, cfg.dim_x);
  EXPECT_LE(static_cast<double>(sum.cells_loaded),
            kappa * static_cast<double>(per_round * rounds));
}

TEST(TelemetryReport, BenchRecordJsonShape) {
  BenchRecord rec;
  rec.bench = "test_bench";
  rec.kernel = "stencil7";
  rec.variant = "3.5d";
  rec.nx = rec.ny = rec.nz = 64;
  rec.steps = 8;
  rec.dim_t = 2;
  rec.kappa = 1.14;
  rec.mups = 123.5;
  rec.bytes_per_update_measured = 6.0;
  rec.bytes_per_update_predicted = 6.83;
  rec.phases.seconds[static_cast<int>(Phase::kCompute)] = 0.25;
  rec.extra["speedup"] = 2.5;

  const std::string json = to_json(rec);
  for (const char* needle :
       {"\"schema\":\"s35.bench.v1\"", "\"bench\":\"test_bench\"",
        "\"kernel\":\"stencil7\"", "\"variant\":\"3.5d\"", "\"dim_t\":2",
        "\"measured\":6", "\"predicted_eq3\":6.83", "\"compute_s\":0.25",
        "\"speedup\":2.5", "\"glups\":0.1235"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\nin: " << json;
  }
}

TEST(TelemetryReport, EscapesStringsAndHandlesNonFinite) {
  BenchRecord rec;
  rec.bench = "quote\"back\\slash";
  rec.mups = std::numeric_limits<double>::infinity();
  const std::string json = to_json(rec);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mups\":null"), std::string::npos) << json;
}

}  // namespace
}  // namespace s35::telemetry
