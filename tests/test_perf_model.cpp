#include <gtest/gtest.h>

#include "core/perf_model.h"

namespace s35::core {
namespace {

using machine::Precision;

// Figure 4(b): 7-pt on the Core i7 at 256^3.
TEST(PerfModel, Stencil7Figure4b) {
  // Naive and spatial-only are bandwidth bound at ~2600-2750 Mupd/s SP.
  const auto naive = predict_stencil7_cpu(CpuScheme::kNaive, Precision::kSingle);
  EXPECT_TRUE(naive.bandwidth_bound);
  EXPECT_NEAR(naive.mups, 2650, 200);
  const auto spatial = predict_stencil7_cpu(CpuScheme::kSpatialOnly, Precision::kSingle);
  EXPECT_NEAR(spatial.mups, naive.mups, 1.0);  // "did not obtain much benefit"

  // 3.5D converts it to compute bound at ~3900 ("1.5X speed up").
  const auto b35 = predict_stencil7_cpu(CpuScheme::kBlocked35D, Precision::kSingle);
  EXPECT_FALSE(b35.bandwidth_bound);
  EXPECT_NEAR(b35.mups, 3900, 200);
  EXPECT_NEAR(b35.mups / naive.mups, 1.5, 0.15);

  // DP is about half of SP ("DP performance is half of the SP performance").
  const auto b35dp = predict_stencil7_cpu(CpuScheme::kBlocked35D, Precision::kDouble);
  EXPECT_NEAR(b35dp.mups, 1995, 150);  // Section VII-D: "around 1,995"
  EXPECT_NEAR(b35dp.mups / b35.mups, 0.5, 0.03);
  const auto naive_dp = predict_stencil7_cpu(CpuScheme::kNaive, Precision::kDouble);
  EXPECT_NEAR(b35dp.mups / naive_dp.mups, 1.5, 0.15);  // DP speedup also 1.5X
}

// Figure 4(b) 64^3 columns: everything fits the LLC; blocking only adds
// ghost overhead ("slight slowdowns").
TEST(PerfModel, Stencil7SmallGrid) {
  const auto naive = predict_stencil7_cpu(CpuScheme::kNaive, Precision::kSingle, 64);
  const auto b35 = predict_stencil7_cpu(CpuScheme::kBlocked35D, Precision::kSingle, 64);
  EXPECT_FALSE(naive.bandwidth_bound);
  EXPECT_LT(b35.mups, naive.mups);
  EXPECT_GT(b35.mups, 0.95 * naive.mups);
  // The paper's "only 15% off the performance for small inputs": large-grid
  // 3.5D is within ~15% of the small-grid compute-bound rate.
  const auto big = predict_stencil7_cpu(CpuScheme::kBlocked35D, Precision::kSingle, 512);
  EXPECT_GT(big.mups, 0.85 * naive.mups);
}

// Figure 5(a): the LBM optimization ladder at 256^3 SP.
TEST(PerfModel, LbmFigure5aLadder) {
  const double scalar =
      predict_lbm_cpu(CpuScheme::kScalarNaive, Precision::kSingle).mups;
  const double simd = predict_lbm_cpu(CpuScheme::kNaive, Precision::kSingle).mups;
  const double spatial =
      predict_lbm_cpu(CpuScheme::kSpatialOnly, Precision::kSingle).mups;
  const double b4d = predict_lbm_cpu(CpuScheme::kBlocked4D, Precision::kSingle).mups;
  const double b35 = predict_lbm_cpu(CpuScheme::kBlocked35D, Precision::kSingle).mups;
  const double ilp = predict_lbm_cpu(CpuScheme::kBlocked35DIlp, Precision::kSingle).mups;

  EXPECT_NEAR(scalar, 52, 6);     // bar 1
  EXPECT_NEAR(simd, 87, 12);      // bar 2 (not 4X: now bandwidth bound)
  EXPECT_LT(simd / scalar, 2.1);
  EXPECT_NEAR(spatial, simd, 1.0);  // bar 3: no spatial reuse
  EXPECT_NEAR(b4d / simd, 1.08, 0.05);  // bar 4: "improves by 8%"
  EXPECT_NEAR(b35, 157, 18);      // bar 5
  EXPECT_NEAR(ilp, 171, 18);      // bar 6
  EXPECT_TRUE(predict_lbm_cpu(CpuScheme::kNaive, Precision::kSingle).bandwidth_bound);
  EXPECT_FALSE(
      predict_lbm_cpu(CpuScheme::kBlocked35D, Precision::kSingle).bandwidth_bound);
}

// Section VI-B expected speedups: "we expect speedups to be 2.2X for SP and
// 2.0X for DP", and 4D only 1.08X SP / 1.06X DP.
TEST(PerfModel, LbmExpectedSpeedups) {
  for (const auto& [p, s35_expect] : {std::tuple{Precision::kSingle, 2.2},
                                      std::tuple{Precision::kDouble, 2.0}}) {
    const double naive = predict_lbm_cpu(CpuScheme::kNaive, p).mups;
    const double b35 = predict_lbm_cpu(CpuScheme::kBlocked35DIlp, p).mups;
    const double b4d = predict_lbm_cpu(CpuScheme::kBlocked4D, p).mups;
    EXPECT_NEAR(b35 / naive, s35_expect, 0.35) << machine::to_string(p);
    // 4D is marginal either way: the paper projects 1.08X SP / 1.06X DP;
    // our model's κ^4D (2.0 SP / 2.8 DP from the same capacity budget)
    // brackets that — a small gain for SP and roughly break-even for DP.
    EXPECT_GT(b4d / naive, 0.8) << machine::to_string(p);
    EXPECT_LT(b4d / naive, 1.2) << machine::to_string(p);
    EXPECT_GT(b35 / b4d, 1.6) << machine::to_string(p);  // 3.5D >> 4D
  }
}

// Figure 4(a): temporal-only helps at 64^3 (buffer fits the 4 MB budget)
// and does nothing at 256^3.
TEST(PerfModel, LbmTemporalOnlyGridDependence) {
  const double naive64 = predict_lbm_cpu(CpuScheme::kNaive, Precision::kSingle, 64).mups;
  const double t64 = predict_lbm_cpu(CpuScheme::kTemporalOnly, Precision::kSingle, 64).mups;
  EXPECT_GT(t64, 1.5 * naive64);
  const double naive256 =
      predict_lbm_cpu(CpuScheme::kNaive, Precision::kSingle, 256).mups;
  const double t256 =
      predict_lbm_cpu(CpuScheme::kTemporalOnly, Precision::kSingle, 256).mups;
  EXPECT_NEAR(t256, naive256, 1.0);
}

// Section VII-B: LBM DP runs at about half the SP rate.
TEST(PerfModel, LbmDpHalfOfSp) {
  const double sp = predict_lbm_cpu(CpuScheme::kBlocked35DIlp, Precision::kSingle).mups;
  const double dp = predict_lbm_cpu(CpuScheme::kBlocked35DIlp, Precision::kDouble).mups;
  EXPECT_NEAR(dp / sp, 0.5, 0.06);
  // Section VII-D: "our 4-core number is around 80 MLUPS" for DP.
  EXPECT_NEAR(dp, 85, 15);
}

TEST(PerfModel, CoreScaling) {
  // Section VII-A: "parallel scalability of around 3.6X on 4-cores".
  EXPECT_NEAR(predicted_core_scaling(4, false, 0.87), 3.6, 0.05);
  EXPECT_DOUBLE_EQ(predicted_core_scaling(4, true), 1.0);
  EXPECT_DOUBLE_EQ(predicted_core_scaling(1, false), 1.0);
}

TEST(PerfModel, SchemeNames) {
  EXPECT_STREQ(to_string(CpuScheme::kBlocked35DIlp), "3.5d + ilp");
  EXPECT_STREQ(to_string(CpuScheme::kScalarNaive), "scalar naive");
}

}  // namespace
}  // namespace s35::core
