#include <gtest/gtest.h>

#include <cmath>

#include "lbm/periodic.h"

namespace s35::lbm {
namespace {

// Independent periodic reference: modular wrap on the periodic axes, flag
// lookups for the rest. Cells flagged non-fluid are frozen.
template <typename T>
class PeriodicReference {
 public:
  PeriodicReference(long nx, long ny, long nz, bool px, bool pz)
      : nx_(nx), ny_(ny), nz_(nz), px_(px), pz_(pz),
        flags_(static_cast<std::size_t>(nx * ny * nz), kFluid),
        f_(static_cast<std::size_t>(kQ) * nx * ny * nz),
        tmp_(f_.size()) {
    for (long z = 0; z < nz; ++z)
      for (long y = 0; y < ny; ++y)
        for (long x = 0; x < nx; ++x)
          for (int i = 0; i < kQ; ++i) at(i, x, y, z) = weight<T>(i);
  }

  void set_flag(long x, long y, long z, CellType t) {
    flags_[idx(x, y, z)] = static_cast<std::uint8_t>(t);
  }
  CellType flag(long x, long y, long z) const {
    return static_cast<CellType>(flags_[idx(x, y, z)]);
  }

  T& at(int i, long x, long y, long z) {
    return f_[static_cast<std::size_t>(i) * nx_ * ny_ * nz_ + idx(x, y, z)];
  }

  void step(const BgkParams<T>& prm) {
    using SV = simd::Vec<T, simd::ScalarTag>;
    T corr[kQ];
    moving_wall_corrections(prm.u_wall, corr);
    T fcorr[kQ];
    body_force_terms(prm.force, fcorr);
    for (long z = 0; z < nz_; ++z)
      for (long y = 0; y < ny_; ++y)
        for (long x = 0; x < nx_; ++x) {
          if (flag(x, y, z) != kFluid) {
            for (int i = 0; i < kQ; ++i)
              tmp_[static_cast<std::size_t>(i) * nx_ * ny_ * nz_ + idx(x, y, z)] =
                  at(i, x, y, z);
            continue;
          }
          SV fin[kQ], fout[kQ];
          for (int i = 0; i < kQ; ++i) {
            const long xn = wrap_x(x - kCx[i]);
            const long yn = y - kCy[i];  // y never periodic here
            const long zn = wrap_z(z - kCz[i]);
            const CellType nf = flag(xn, yn, zn);
            if (nf == kFluid) {
              fin[i] = SV{at(i, xn, yn, zn)};
            } else if (nf == kWall) {
              fin[i] = SV{at(kOpposite[i], x, y, z)};
            } else {
              fin[i] = SV{at(kOpposite[i], x, y, z) + corr[i]};
            }
          }
          bgk_collide<SV, T>(fin, fout, prm.omega);
          for (int i = 0; i < kQ; ++i)
            tmp_[static_cast<std::size_t>(i) * nx_ * ny_ * nz_ + idx(x, y, z)] =
                fout[i].v + fcorr[i];
        }
    f_.swap(tmp_);
  }

 private:
  std::size_t idx(long x, long y, long z) const {
    return static_cast<std::size_t>((z * ny_ + y) * nx_ + x);
  }
  long wrap_x(long x) const { return px_ ? (x + nx_) % nx_ : x; }
  long wrap_z(long z) const { return pz_ ? (z + nz_) % nz_ : z; }

  long nx_, ny_, nz_;
  bool px_, pz_;
  std::vector<std::uint8_t> flags_;
  std::vector<T> f_;
  std::vector<T> tmp_;
};

class PeriodicP : public ::testing::TestWithParam<std::tuple<bool, bool, int, int>> {};

TEST_P(PeriodicP, DriverMatchesModularReferenceBitExact) {
  const auto [px, pz, dim_t, steps] = GetParam();
  const long nx = 16, ny = 12, nz = 14;

  PeriodicLbmDriver<float>::Options opt;
  opt.periodic_x = px;
  opt.periodic_z = pz;
  opt.dim_t = dim_t;
  PeriodicLbmDriver<float> driver(nx, ny, nz, opt);
  driver.set_lid();
  driver.finalize();

  PeriodicReference<float> ref(nx, ny, nz, px, pz);
  // Mirror the driver's logical boundary: y faces are walls with a moving
  // lid; non-periodic axes keep their wall faces.
  for (long z = 0; z < nz; ++z)
    for (long x = 0; x < nx; ++x) {
      ref.set_flag(x, 0, z, kWall);
      ref.set_flag(x, ny - 1, z, kMovingWall);
    }
  if (!px) {
    for (long z = 0; z < nz; ++z)
      for (long y = 0; y < ny; ++y) {
        ref.set_flag(0, y, z, kWall);
        ref.set_flag(nx - 1, y, z, kWall);
      }
  }
  if (!pz) {
    for (long y = 0; y < ny; ++y)
      for (long x = 0; x < nx; ++x) {
        ref.set_flag(x, y, 0, kWall);
        ref.set_flag(x, y, nz - 1, kWall);
      }
  }
  // The driver's lid only covers interior cells of the y=ny-1 face on
  // non-periodic axes (edges stay kWall); match that.
  if (!px) {
    for (long z = 0; z < nz; ++z) {
      ref.set_flag(0, ny - 1, z, kWall);
      ref.set_flag(nx - 1, ny - 1, z, kWall);
    }
  }
  if (!pz) {
    for (long x = 0; x < nx; ++x) {
      ref.set_flag(x, ny - 1, 0, kWall);
      ref.set_flag(x, ny - 1, nz - 1, kWall);
    }
  }

  BgkParams<float> prm;
  prm.omega = 1.3f;
  prm.u_wall[0] = 0.06f;

  core::Engine35 engine(3);
  driver.run(steps, prm, engine);
  for (int s = 0; s < steps; ++s) ref.step(prm);

  // Compare via the probe API (logical coordinates).
  long mismatches = 0;
  double worst = 0.0;
  for (long z = 0; z < nz; ++z)
    for (long y = 0; y < ny; ++y)
      for (long x = 0; x < nx; ++x) {
        float ud[3], ur_buf[3];
        driver.velocity(x, y, z, ud);
        // Reference velocity:
        float rho = 0, ux = 0, uy = 0, uz = 0;
        for (int i = 0; i < kQ; ++i) {
          const float f = ref.at(i, x, y, z);
          rho += f;
          ux += kCx[i] * f;
          uy += kCy[i] * f;
          uz += kCz[i] * f;
        }
        ur_buf[0] = ux / rho;
        ur_buf[1] = uy / rho;
        ur_buf[2] = uz / rho;
        for (int c = 0; c < 3; ++c) {
          const double d = std::abs(double(ud[c]) - double(ur_buf[c]));
          worst = std::max(worst, d);
          if (d != 0.0) ++mismatches;
        }
      }
  EXPECT_EQ(mismatches, 0) << "worst velocity diff " << worst;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodicP,
                         ::testing::Values(std::tuple{true, true, 3, 7},
                                           std::tuple{true, true, 2, 4},
                                           std::tuple{true, false, 3, 6},
                                           std::tuple{false, true, 2, 5},
                                           std::tuple{true, true, 1, 3}));

// Plane Couette flow: periodic x/z, bottom wall, moving lid -> exact
// linear steady profile. This is the analytic validation the frozen-shell
// boundary model cannot express (see examples/channel_couette.cpp).
TEST(PeriodicCouette, LinearSteadyProfile) {
  const long nx = 8, ny = 20, nz = 8;
  PeriodicLbmDriver<double>::Options opt;
  opt.dim_t = 3;
  PeriodicLbmDriver<double> driver(nx, ny, nz, opt);
  driver.set_lid();
  driver.finalize();

  BgkParams<double> prm;
  prm.omega = 1.4;
  prm.u_wall[0] = 0.04;

  core::Engine35 engine(2);
  driver.run(4000, prm, engine);

  // Half-way bounce-back: walls at y = 0.5 and y = ny - 1.5.
  const double y_lo = 0.5, y_hi = ny - 1.5;
  double worst = 0.0;
  for (long y = 1; y < ny - 1; ++y) {
    double u[3];
    driver.velocity(nx / 2, y, nz / 2, u);
    const double expect = prm.u_wall[0] * (y - y_lo) / (y_hi - y_lo);
    worst = std::max(worst, std::abs(u[0] - expect));
  }
  EXPECT_LT(worst / prm.u_wall[0], 0.01);
}

// Body-force-driven Poiseuille flow between stationary plates (periodic
// x/z): steady parabolic profile u(y) = g (y-y0)(y1-y) / (2 nu) with the
// half-way bounce-back walls at y0 = 0.5, y1 = ny - 1.5.
TEST(PeriodicPoiseuille, ParabolicSteadyProfile) {
  const long nx = 8, ny = 18, nz = 8;
  PeriodicLbmDriver<double>::Options opt;
  opt.dim_t = 3;
  PeriodicLbmDriver<double> driver(nx, ny, nz, opt);
  driver.finalize();

  BgkParams<double> prm;
  prm.omega = 1.2;
  prm.force[0] = 1e-6;
  const double nu = (1.0 / prm.omega - 0.5) / 3.0;

  core::Engine35 engine(2);
  driver.run(4000, prm, engine);

  const double y0 = 0.5, y1 = ny - 1.5;
  const double umax = prm.force[0] * (y1 - y0) * (y1 - y0) / (8.0 * nu);
  double worst = 0.0;
  for (long y = 1; y < ny - 1; ++y) {
    double u[3];
    driver.velocity(nx / 2, y, nz / 2, u);
    const double expect = prm.force[0] * (y - y0) * (y1 - y) / (2.0 * nu);
    worst = std::max(worst, std::abs(u[0] - expect));
  }
  EXPECT_LT(worst / umax, 0.02);
}

// Mass is conserved under periodic wrap + bounce-back.
TEST(PeriodicCouette, MassConserved) {
  const long n = 12;
  PeriodicLbmDriver<double>::Options opt;
  opt.dim_t = 2;
  PeriodicLbmDriver<double> driver(n, n, n, opt);
  driver.finalize();

  double mass0 = 0.0;
  for (long z = 0; z < n; ++z)
    for (long y = 1; y < n - 1; ++y)
      for (long x = 0; x < n; ++x) mass0 += driver.density(x, y, z);

  BgkParams<double> prm;
  prm.omega = 1.1;
  core::Engine35 engine(2);
  driver.run(20, prm, engine);

  double mass1 = 0.0;
  for (long z = 0; z < n; ++z)
    for (long y = 1; y < n - 1; ++y)
      for (long x = 0; x < n; ++x) mass1 += driver.density(x, y, z);
  EXPECT_NEAR(mass1, mass0, 1e-9 * mass0);
}

}  // namespace
}  // namespace s35::lbm
