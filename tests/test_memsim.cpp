#include <gtest/gtest.h>

#include "memsim/cache.h"
#include "memsim/tlb.h"

namespace s35::memsim {
namespace {

CacheConfig tiny_cache() {
  CacheConfig c;
  c.size_bytes = 4096;  // 64 lines
  c.ways = 4;           // 16 sets
  c.line_bytes = 64;
  return c;
}

TEST(Cache, ColdReadMissesThenHits) {
  Cache c(tiny_cache());
  c.read(0, 64);
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().bytes_from_memory, 64u);
  c.read(0, 64);
  EXPECT_EQ(c.stats().read_hits, 1u);
  EXPECT_EQ(c.stats().bytes_from_memory, 64u);  // unchanged
}

TEST(Cache, RangeTouchesEveryCoveredLine) {
  Cache c(tiny_cache());
  c.read(10, 200);  // spans lines 0..3 (bytes 10..209)
  EXPECT_EQ(c.stats().read_misses, 4u);
  c.read(64, 1);
  EXPECT_EQ(c.stats().read_hits, 1u);
}

TEST(Cache, WriteAllocateFetchesLine) {
  Cache c(tiny_cache());
  c.write(128, 64);
  EXPECT_EQ(c.stats().write_misses, 1u);
  EXPECT_EQ(c.stats().bytes_from_memory, 64u);  // write-allocate fill
  EXPECT_EQ(c.stats().bytes_to_memory, 0u);     // not yet evicted
  c.flush();
  EXPECT_EQ(c.stats().bytes_to_memory, 64u);  // dirty write-back
}

TEST(Cache, StreamingStoreBypasses) {
  Cache c(tiny_cache());
  c.stream_write(0, 128);
  EXPECT_EQ(c.stats().bytes_from_memory, 0u);  // no RFO
  EXPECT_EQ(c.stats().bytes_to_memory, 128u);
  c.flush();
  EXPECT_EQ(c.stats().bytes_to_memory, 128u);  // nothing cached to evict
}

TEST(Cache, StreamingStoreInvalidatesCachedCopy) {
  Cache c(tiny_cache());
  c.write(0, 64);         // dirty in cache
  c.stream_write(0, 64);  // overwrites the whole line
  c.flush();
  // Only the streamed 64 bytes hit memory; the dirty copy was dropped.
  EXPECT_EQ(c.stats().bytes_to_memory, 64u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  CacheConfig cfg;
  cfg.size_bytes = 256;  // 4 lines
  cfg.ways = 4;          // fully associative, 1 set
  cfg.line_bytes = 64;
  Cache c(cfg);
  // Fill 4 ways: lines 0,1,2,3.
  for (int i = 0; i < 4; ++i) c.read(static_cast<std::uint64_t>(i) * 64, 1);
  c.read(0, 1);                      // line 0 now MRU
  c.read(4 * 64, 1);                 // evicts line 1 (LRU)
  c.reset_stats();
  c.read(0, 1);                      // hit
  EXPECT_EQ(c.stats().read_hits, 1u);
  c.read(64, 1);                     // line 1 was evicted: miss
  EXPECT_EQ(c.stats().read_misses, 1u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache c(tiny_cache());  // 4 KB
  // Stream 64 KB twice; second pass must miss again.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) c.read(a, 64);
  EXPECT_EQ(c.stats().read_misses, 2 * 1024u);
  EXPECT_EQ(c.stats().read_hits, 0u);
}

TEST(Cache, WorkingSetFittingCacheHitsOnSecondPass) {
  Cache c(tiny_cache());  // 4 KB
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < 2048; a += 64) c.read(a, 64);
  EXPECT_EQ(c.stats().read_misses, 32u);
  EXPECT_EQ(c.stats().read_hits, 32u);
}

TEST(Cache, MissRate) {
  Cache c(tiny_cache());
  c.read(0, 64);
  c.read(0, 64);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(Tlb, HitsWithinPage) {
  TlbConfig cfg;
  cfg.entries = 4;
  cfg.page_bytes = 4096;
  Tlb t(cfg);
  t.access(0, 100);
  t.access(1000, 100);
  EXPECT_EQ(t.stats().misses, 1u);
  EXPECT_EQ(t.stats().hits, 1u);
}

TEST(Tlb, LruReplacement) {
  TlbConfig cfg;
  cfg.entries = 2;
  cfg.page_bytes = 4096;
  Tlb t(cfg);
  t.access(0 * 4096, 1);      // page 0
  t.access(1 * 4096, 1);      // page 1
  t.access(0 * 4096, 1);      // page 0 MRU
  t.access(2 * 4096, 1);      // evicts page 1
  t.reset_stats();
  t.access(0 * 4096, 1);
  EXPECT_EQ(t.stats().hits, 1u);
  t.access(1 * 4096, 1);
  EXPECT_EQ(t.stats().misses, 1u);
}

TEST(Tlb, LargePagesCutMisses) {
  // Strided walk over 32 MB with a 64-entry TLB: 4 KB pages thrash,
  // 2 MB pages fit — the Section III-A large-pages effect.
  const std::uint64_t span = 32ull << 20;
  TlbConfig small_pages{64, 4096};
  TlbConfig large_pages{32, 2u << 20};
  Tlb ts(small_pages), tl(large_pages);
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < span; a += 4096) {
      ts.access(a, 64);
      tl.access(a, 64);
    }
  EXPECT_GT(ts.stats().miss_rate(), 0.9);
  EXPECT_LT(tl.stats().miss_rate(), 0.01);
}

}  // namespace
}  // namespace s35::memsim
