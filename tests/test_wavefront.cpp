#include <gtest/gtest.h>

#include "core/wavefront.h"

namespace s35::core {
namespace {

// Brute-force count for small grids.
std::int64_t brute_cells(long nx, long ny, long nz, long s) {
  std::int64_t n = 0;
  for (long z = 0; z < nz; ++z)
    for (long y = 0; y < ny; ++y)
      for (long x = 0; x < nx; ++x)
        if (x + y + z == s) ++n;
  return n;
}

TEST(Wavefront, CellCountsMatchBruteForce) {
  for (const auto& [nx, ny, nz] :
       {std::tuple{5L, 5L, 5L}, std::tuple{7L, 3L, 4L}, std::tuple{1L, 9L, 2L}}) {
    for (long s = -1; s <= nx + ny + nz; ++s) {
      EXPECT_EQ(wavefront_cells(nx, ny, nz, s), brute_cells(nx, ny, nz, s))
          << nx << "x" << ny << "x" << nz << " s=" << s;
    }
  }
}

TEST(Wavefront, TotalOverAllFrontsEqualsGridSize) {
  const long nx = 6, ny = 7, nz = 8;
  std::int64_t total = 0;
  for (long s = 0; s <= (nx - 1) + (ny - 1) + (nz - 1); ++s)
    total += wavefront_cells(nx, ny, nz, s);
  EXPECT_EQ(total, nx * ny * nz);
}

TEST(Wavefront, WorkingSetSumsNeighboringFronts) {
  EXPECT_EQ(wavefront_working_set(5, 5, 5, 3, 1),
            brute_cells(5, 5, 5, 2) + brute_cells(5, 5, 5, 3) + brute_cells(5, 5, 5, 4));
}

// Section V-A1's rejection: the wavefront's resident set is the whole
// diagonal front — it cannot be tiled down without re-loading — and its
// peak grows as O(N^2) (the grid's diagonal cross-section). The paper's
// 2.5D scheme instead tiles the XY plane, so its resident set is the
// fixed cache-sized buffer regardless of N. The ratio therefore grows
// without bound with the grid size.
TEST(Wavefront, PeakGrowsQuadraticallyVsFixedTiledBuffer) {
  const int R = 1;
  const std::int64_t tiled_buffer = (2 * R + 1) * 64 * 64;  // a 64x64 2.5D tile
  double prev_ratio = 0.0;
  for (long n : {32L, 64L, 128L, 256L}) {
    const auto peak = wavefront_peak_working_set(n, n, n, R);
    // Peak front of a cube holds ~0.75 n^2 points per front, x (2R+1).
    EXPECT_GT(peak, static_cast<std::int64_t>(1.5 * n * n));
    EXPECT_LT(peak, static_cast<std::int64_t>(2.5 * n * n));
    const double ratio = static_cast<double>(peak) / static_cast<double>(tiled_buffer);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 10.0);  // 256^3: 12x a cache-sized tile, and growing
}

// Sanity on the bound: the working set can never exceed (2R+1) full XY
// cross-sections (each front meets each (x, y) column at most once), and
// the cube peak sits at ~75% of that bound.
TEST(Wavefront, PeakBoundedByCrossSections) {
  const int R = 1;
  for (long n : {32L, 128L}) {
    const auto peak = wavefront_peak_working_set(n, n, n, R);
    EXPECT_LE(peak, (2 * R + 1) * n * n);
    EXPECT_GT(peak, static_cast<std::int64_t>(0.7 * (2 * R + 1) * n * n));
  }
}

TEST(Wavefront, DegenerateAxes) {
  EXPECT_EQ(wavefront_cells(1, 1, 1, 0), 1);
  EXPECT_EQ(wavefront_cells(1, 1, 1, 1), 0);
  EXPECT_EQ(wavefront_peak_working_set(1, 1, 8, 1), 3);
}

}  // namespace
}  // namespace s35::core
