// Consistent-hash ring: determinism, balance, minimal movement on
// membership change, and the clockwise failover order the shard router
// relies on. Pure unit tests — no sockets, no threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/ring.h"

namespace s35 {
namespace {

using cluster::HashRing;

// Deterministic 64-bit keys standing in for JobSpec::shape_key values.
std::vector<std::uint64_t> shape_keys(int count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    keys.push_back(HashRing::point_hash("shape-" + std::to_string(i), i));
  return keys;
}

std::vector<std::string> node_names(int count) {
  std::vector<std::string> nodes;
  for (int i = 0; i < count; ++i)
    nodes.push_back("127.0.0.1:" + std::to_string(7400 + i));
  return nodes;
}

TEST(RingTest, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_EQ(ring.nodes(), 0u);
  EXPECT_EQ(ring.owner(12345), "");
  EXPECT_TRUE(ring.owners(12345, 3).empty());
}

TEST(RingTest, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.add("only:1");
  for (const auto key : shape_keys(100)) EXPECT_EQ(ring.owner(key), "only:1");
}

TEST(RingTest, MembershipBookkeeping) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  ring.add("a:1");  // duplicate: ignored
  EXPECT_EQ(ring.nodes(), 2u);
  EXPECT_TRUE(ring.contains("a:1"));
  EXPECT_FALSE(ring.contains("c:3"));
  ring.remove("a:1");
  EXPECT_EQ(ring.nodes(), 1u);
  EXPECT_FALSE(ring.contains("a:1"));
  ring.remove("a:1");  // double remove: no-op
  EXPECT_EQ(ring.nodes(), 1u);
}

TEST(RingTest, OwnerIndependentOfInsertionOrder) {
  const auto nodes = node_names(5);
  HashRing forward, backward;
  for (const auto& n : nodes) forward.add(n);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) backward.add(*it);
  for (const auto key : shape_keys(200))
    EXPECT_EQ(forward.owner(key), backward.owner(key));
}

// Each of 4 nodes should own its fair share of 1000 distinct shapes within
// +/-20% — the virtual-node fan-out is what smooths the raw hash variance.
TEST(RingTest, BalanceWithinTwentyPercent) {
  const auto nodes = node_names(4);
  HashRing ring(128);
  for (const auto& n : nodes) ring.add(n);
  std::map<std::string, int> owned;
  const auto keys = shape_keys(1000);
  for (const auto key : keys) ++owned[ring.owner(key)];
  const double fair = static_cast<double>(keys.size()) / nodes.size();
  for (const auto& n : nodes) {
    EXPECT_GE(owned[n], static_cast<int>(fair * 0.8)) << n;
    EXPECT_LE(owned[n], static_cast<int>(fair * 1.2)) << n;
  }
}

// Removing one of N nodes must move only the dead node's keys: every other
// key keeps its owner (this is the property that preserves plan/grid
// warmth through a failover).
TEST(RingTest, RemovalMovesOnlyTheDeadNodesKeys) {
  const auto nodes = node_names(5);
  HashRing ring;
  for (const auto& n : nodes) ring.add(n);
  const auto keys = shape_keys(1000);
  std::map<std::uint64_t, std::string> before;
  for (const auto key : keys) before[key] = ring.owner(key);

  const std::string dead = nodes[2];
  ring.remove(dead);
  int moved = 0;
  for (const auto key : keys) {
    const std::string after = ring.owner(key);
    EXPECT_NE(after, dead);
    if (after != before[key]) {
      ++moved;
      EXPECT_EQ(before[key], dead);  // survivors' keys never move
    }
  }
  // Everything the dead node owned moved, and nothing else did.
  int dead_owned = 0;
  for (const auto& [key, owner] : before) dead_owned += owner == dead ? 1 : 0;
  EXPECT_EQ(moved, dead_owned);
  EXPECT_GT(moved, 0);
}

// Adding one node to N-1 remaps roughly 1/N of keys (all toward the new
// node); assert the <= 2/N bound that makes "minimal movement" concrete.
TEST(RingTest, AddMovesAtMostTwiceTheFairShare) {
  const auto nodes = node_names(5);
  HashRing ring(128);
  for (int i = 0; i < 4; ++i) ring.add(nodes[static_cast<std::size_t>(i)]);
  const auto keys = shape_keys(1000);
  std::map<std::uint64_t, std::string> before;
  for (const auto key : keys) before[key] = ring.owner(key);

  ring.add(nodes[4]);
  int moved = 0;
  for (const auto key : keys) {
    const std::string after = ring.owner(key);
    if (after != before[key]) {
      ++moved;
      EXPECT_EQ(after, nodes[4]);  // movement only flows toward the new node
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, static_cast<int>(2.0 * keys.size() / 5));
}

// owners(k, n) is the failover order: distinct nodes, starting at the
// owner, and after the owner dies the ring successor takes over.
TEST(RingTest, OwnersGiveTheFailoverSuccessor) {
  const auto nodes = node_names(3);
  HashRing ring;
  for (const auto& n : nodes) ring.add(n);
  for (const auto key : shape_keys(100)) {
    const auto order = ring.owners(key, 3);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.owner(key));
    EXPECT_NE(order[0], order[1]);
    EXPECT_NE(order[1], order[2]);
    EXPECT_NE(order[0], order[2]);

    HashRing survivor = ring;
    survivor.remove(order[0]);
    EXPECT_EQ(survivor.owner(key), order[1]);
  }
}

TEST(RingTest, OwnersClampToMembership) {
  HashRing ring;
  ring.add("a:1");
  ring.add("b:2");
  const auto order = ring.owners(42, 5);
  EXPECT_EQ(order.size(), 2u);
}

TEST(RingTest, PointHashSpreadsReplicas) {
  // Replicas of one node must not clump: all distinct, and not ordered.
  std::vector<std::uint64_t> points;
  for (int r = 0; r < 64; ++r) points.push_back(HashRing::point_hash("n:1", r));
  std::sort(points.begin(), points.end());
  EXPECT_EQ(std::unique(points.begin(), points.end()), points.end());
}

}  // namespace
}  // namespace s35
