#include <gtest/gtest.h>

#include "gpumodel/gpu_model.h"

namespace s35::gpumodel {
namespace {

using machine::Precision;

// Section VI-A: the GPU 3.5D parameters for 7-pt SP.
TEST(GpuPlan, Stencil7SpParameters) {
  const GpuBlockingParams bp = plan_stencil7_sp();
  EXPECT_TRUE(bp.feasible);
  EXPECT_EQ(bp.dim_t, 2);
  EXPECT_EQ(bp.dim_x_bound, 45);  // "dim_x <= 45.2"
  EXPECT_EQ(bp.dim_x, 32);        // warp multiple
  EXPECT_NEAR(bp.kappa, 1.31, 0.01);  // "evaluates to around 1.31X"
}

// Section VI-B: LBM SP blocking is infeasible on GTX 285.
TEST(GpuPlan, LbmSpInfeasible) {
  const GpuBlockingParams bp7 = plan_lbm_sp(7);  // dim_t >= 6.1 -> 7
  EXPECT_FALSE(bp7.feasible);
  EXPECT_LE(bp7.dim_x_bound, 2);  // "yields dim_x <= 2"
  const GpuBlockingParams bp2 = plan_lbm_sp(2);  // even the minimum dim_t
  EXPECT_FALSE(bp2.feasible);
  EXPECT_LE(bp2.dim_x_bound, 4);  // "yields dim_x <= 4"
}

// Figure 4(c) / 5(b): the 7-pt SP ladder on GTX 285.
TEST(GpuPredict, Stencil7SpLadder) {
  const double naive = predict_stencil7(GpuScheme::kNaive, Precision::kSingle).mups;
  const double spatial =
      predict_stencil7(GpuScheme::kSpatialShared, Precision::kSingle).mups;
  const double b4d = predict_stencil7(GpuScheme::kBlocked4D, Precision::kSingle).mups;
  const double b35 = predict_stencil7(GpuScheme::kBlocked35D, Precision::kSingle).mups;
  const double unroll = predict_stencil7(GpuScheme::kUnrolled, Precision::kSingle).mups;
  const double multi =
      predict_stencil7(GpuScheme::kMultiUpdate, Precision::kSingle).mups;

  EXPECT_NEAR(naive, 3300, 150);     // Fig 5(b) bar 1
  EXPECT_NEAR(spatial, 9234, 450);   // bar 2
  EXPECT_NEAR(b4d, 9700, 900);       // bar 3 ("improves ~5%")
  EXPECT_NEAR(b35, 13252, 650);      // bar 4
  EXPECT_NEAR(unroll, 14345, 700);   // bar 5
  EXPECT_NEAR(multi, 17115, 850);    // bar 6

  // Shape claims: spatial ~2.8X over naive, 3.5D ~1.9X over spatial's bound.
  EXPECT_NEAR(spatial / naive, 2.8, 0.3);
  EXPECT_NEAR(multi / spatial, 1.85, 0.25);
}

TEST(GpuPredict, Stencil7SpBoundTransitions) {
  EXPECT_TRUE(predict_stencil7(GpuScheme::kNaive, Precision::kSingle).bandwidth_bound);
  EXPECT_TRUE(
      predict_stencil7(GpuScheme::kSpatialShared, Precision::kSingle).bandwidth_bound);
  // 3.5D converts it to compute bound.
  EXPECT_FALSE(
      predict_stencil7(GpuScheme::kBlocked35D, Precision::kSingle).bandwidth_bound);
}

// DP: spatial blocking alone is compute bound at ~4600 Mupd/s; temporal
// blocking adds nothing (Section VII-A GPU).
TEST(GpuPredict, Stencil7DpComputeBound) {
  const auto spatial = predict_stencil7(GpuScheme::kSpatialShared, Precision::kDouble);
  EXPECT_FALSE(spatial.bandwidth_bound);
  EXPECT_NEAR(spatial.mups, 4600, 500);
  const auto b35 = predict_stencil7(GpuScheme::kBlocked35D, Precision::kDouble);
  EXPECT_NEAR(b35.mups, spatial.mups, 1.0);  // "temporal blocking unnecessary"
}

// LBM GPU: SP bandwidth bound at ~485 MLUPS regardless of scheme; DP
// compute bound (~39 DP Gops -> ~180 MLUPS).
TEST(GpuPredict, LbmRates) {
  const auto sp = predict_lbm(GpuScheme::kNaive, Precision::kSingle);
  EXPECT_TRUE(sp.bandwidth_bound);
  EXPECT_NEAR(sp.mups, 485, 40);
  const auto sp35 = predict_lbm(GpuScheme::kBlocked35D, Precision::kSingle);
  EXPECT_DOUBLE_EQ(sp35.mups, sp.mups);  // blocking infeasible

  const auto dp = predict_lbm(GpuScheme::kNaive, Precision::kDouble);
  EXPECT_FALSE(dp.bandwidth_bound);
  EXPECT_NEAR(dp.mups, 180, 25);
  // "about 39 DP Gops/second"
  EXPECT_NEAR(dp.mups * 1e6 * 220.0 / 1e9, 39.0, 6.0);
}

// Section VII-D GPU comparison: 1.8X SP speedup over the bandwidth-bound
// spatially-blocked state of the art.
TEST(GpuPredict, SectionViiDSpeedups) {
  const double spatial =
      predict_stencil7(GpuScheme::kSpatialShared, Precision::kSingle).mups;
  const double best = predict_stencil7(GpuScheme::kMultiUpdate, Precision::kSingle).mups;
  EXPECT_NEAR(best / spatial, 1.8, 0.25);
}

TEST(GpuSchemeNames, Stable) {
  EXPECT_STREQ(to_string(GpuScheme::kNaive), "naive");
  EXPECT_STREQ(to_string(GpuScheme::kMultiUpdate), "3.5d + multi-update");
}

}  // namespace
}  // namespace s35::gpumodel
