// Runtime ISA dispatch: CPUID detection, the S35_ISA override, clamping to
// the compiled backend set, and forced-backend sweep equivalence.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "core/kernel_options.h"
#include "grid/grid3.h"
#include "simd/dispatch.h"
#include "stencil/sweeps.h"

namespace s35::simd {
namespace {

// Scoped setenv/unsetenv so test order cannot leak S35_ISA.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(Dispatch, ParseRoundTrips) {
  for (Isa isa : {Isa::kScalar, Isa::kSse, Isa::kAvx, Isa::kAvx2, Isa::kAvx512}) {
    const auto parsed = parse_isa(to_string(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(parse_isa("avx1024").has_value());
  EXPECT_FALSE(parse_isa("").has_value());
  EXPECT_FALSE(parse_isa("SSE").has_value());
}

TEST(Dispatch, DetectedIsAtLeastScalarAndStable) {
  const Isa a = detected_isa();
  EXPECT_GE(static_cast<int>(a), static_cast<int>(Isa::kScalar));
  EXPECT_EQ(a, detected_isa());  // cached
}

TEST(Dispatch, DefaultClampsToCompiledAndDetected) {
  const ScopedEnv env("S35_ISA", nullptr);
  const Isa isa = dispatch_isa();
  EXPECT_LE(static_cast<int>(isa), static_cast<int>(compiled_isa()));
  EXPECT_LE(static_cast<int>(isa), static_cast<int>(detected_isa()));
  EXPECT_TRUE(isa_available(isa));
}

TEST(Dispatch, EnvOverrideNarrows) {
  const ScopedEnv env("S35_ISA", "scalar");
  EXPECT_EQ(dispatch_isa(), Isa::kScalar);
}

TEST(Dispatch, EnvOverrideCannotWiden) {
  // Asking for a wider ISA than supported silently clamps down rather than
  // executing instructions the build or CPU lacks.
  const ScopedEnv env("S35_ISA", "avx2");
  const Isa isa = dispatch_isa();
  EXPECT_LE(static_cast<int>(isa), static_cast<int>(compiled_isa()));
  EXPECT_LE(static_cast<int>(isa), static_cast<int>(detected_isa()));
}

TEST(Dispatch, MalformedEnvIsIgnored) {
  const ScopedEnv env("S35_ISA", "fastest-please");
  EXPECT_EQ(dispatch_isa(), [&] {
    const ScopedEnv none("S35_ISA", nullptr);
    return dispatch_isa();
  }());
}

TEST(Dispatch, DispatchInvokesMatchingTag) {
  const std::string name =
      dispatch(dispatch_isa(), [](auto tag) -> std::string {
        return Vec<float, decltype(tag)>::name;
      });
  EXPECT_EQ(name, to_string(dispatch_isa()));
}

TEST(Dispatch, WiderRequestClampsInsideDispatch) {
  // Requesting the widest rung in the enum must clamp to whatever this
  // build+host actually supports (and is a no-op when that IS the widest).
  const ScopedEnv env("S35_ISA", nullptr);
  const std::string name = dispatch(Isa::kAvx512, [](auto tag) -> std::string {
    return Vec<float, decltype(tag)>::name;
  });
  EXPECT_EQ(name, to_string(dispatch_isa()));
}

TEST(Dispatch, KernelOptionsFromEnvReadsFlags) {
  const ScopedEnv fast("S35_FAST", "0");
  const ScopedEnv fma("S35_FMA", "1");
  const ScopedEnv pf("S35_PREFETCH", "0");
  const ScopedEnv pfd("S35_PREFETCH_DIST", "128");
  const core::KernelOptions o = core::KernelOptions::from_env();
  EXPECT_FALSE(o.fast_path);
  EXPECT_TRUE(o.allow_fma);
  EXPECT_FALSE(o.prefetch);
  EXPECT_EQ(o.prefetch_dist, 128);
}

TEST(Dispatch, PrefetchDistRejectsNegativeAndDefaultsToZero) {
  {
    const ScopedEnv pfd("S35_PREFETCH_DIST", nullptr);
    EXPECT_EQ(core::KernelOptions::from_env().prefetch_dist, 0);
  }
  {
    const ScopedEnv pfd("S35_PREFETCH_DIST", "-64");
    EXPECT_EQ(core::KernelOptions::from_env().prefetch_dist, 0);
  }
}

TEST(Dispatch, KernelOptionsDefaultsAreBitExact) {
  const ScopedEnv fast("S35_FAST", nullptr);
  const ScopedEnv fma("S35_FMA", nullptr);
  const ScopedEnv pf("S35_PREFETCH", nullptr);
  const core::KernelOptions o = core::KernelOptions::from_env();
  EXPECT_TRUE(o.fast_path);
  EXPECT_FALSE(o.allow_fma);  // FMA is strictly opt-in
  EXPECT_TRUE(o.prefetch);
}

// Every backend this build+CPU can run must produce the identical grid via
// the runtime-dispatched sweep entry point (the ISSUE's forced-backend
// equivalence requirement).
TEST(Dispatch, ForcedBackendSweepsAreBitIdentical) {
  constexpr long N = 20;
  constexpr int kSteps = 3;
  core::Engine35 engine(2);
  const auto stencil = stencil::default_stencil7<float>();

  auto run_with = [&](Isa isa) {
    grid::GridPair<float> pair(N, N, N);
    pair.src().fill_random(77);
    stencil::SweepConfig cfg;
    cfg.kernel.isa = isa;
    stencil::run_sweep_auto(stencil::Variant::kNaive, stencil, pair, kSteps, cfg,
                            engine);
    return pair.src();  // copy out
  };

  const grid::Grid3<float> ref = run_with(Isa::kScalar);
  for (Isa isa : {Isa::kSse, Isa::kAvx, Isa::kAvx2, Isa::kAvx512}) {
    if (!isa_available(isa)) continue;
    const grid::Grid3<float> got = run_with(isa);
    EXPECT_EQ(grid::count_mismatches(ref, got), 0)
        << "backend " << to_string(isa) << " diverged from scalar";
  }
}

}  // namespace
}  // namespace s35::simd
