// Opt-in huge-page allocation (common/aligned_buffer.h): env gating, 2 MB
// alignment of eligible blocks, stat accounting, and graceful fallback —
// allocation must never fail because huge pages are unavailable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/aligned_buffer.h"

namespace s35 {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

bool is_2mb_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kHugePageBytes == 0;
}

TEST(HugePages, RequestedReadsEnvEachCall) {
  {
    const ScopedEnv env("S35_HUGEPAGES", nullptr);
    EXPECT_FALSE(hugepages_requested());
  }
  {
    const ScopedEnv env("S35_HUGEPAGES", "1");
    EXPECT_TRUE(hugepages_requested());
  }
  {
    const ScopedEnv env("S35_HUGEPAGES", "0");
    EXPECT_FALSE(hugepages_requested());
  }
}

TEST(HugePages, OffByDefaultLeavesStatsUntouched) {
  const ScopedEnv env("S35_HUGEPAGES", nullptr);
  reset_hugepage_stats();
  void* p = aligned_malloc(4 * kHugePageBytes);
  ASSERT_NE(p, nullptr);
  aligned_free(p);
  const HugePageStats s = hugepage_stats();
  EXPECT_EQ(s.huge_requests, 0u);
  EXPECT_EQ(s.huge_bytes, 0u);
  EXPECT_EQ(s.fallbacks, 0u);
}

TEST(HugePages, EligibleAllocationIs2MbAlignedAndRounded) {
  const ScopedEnv env("S35_HUGEPAGES", "1");
  reset_hugepage_stats();
  // 3 MB request: eligible (>= 2 MB), rounds up to two huge pages.
  void* p = aligned_malloc(3u << 20);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(is_2mb_aligned(p));
  const HugePageStats s = hugepage_stats();
  EXPECT_EQ(s.huge_requests, 1u);
  EXPECT_EQ(s.huge_bytes, 2 * kHugePageBytes);
  EXPECT_EQ(s.fallbacks, 0u);
  // The whole rounded range must be writable.
  auto* bytes = static_cast<unsigned char*>(p);
  bytes[0] = 1;
  bytes[(3u << 20) - 1] = 2;
  aligned_free(p);
}

TEST(HugePages, SmallAllocationsStayOnTheDefaultPath) {
  const ScopedEnv env("S35_HUGEPAGES", "1");
  reset_hugepage_stats();
  void* p = aligned_malloc(64 * 1024);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(hugepage_stats().huge_requests, 0u);
  aligned_free(p);
}

TEST(HugePages, BufferOfGridScaleGetsHugeBacking) {
  const ScopedEnv env("S35_HUGEPAGES", "1");
  reset_hugepage_stats();
  // A 96^3 SP grid (~3.4 MB) — the smallest bench shapes already qualify.
  AlignedBuffer<float> buf(96 * 96 * 96);
  EXPECT_TRUE(is_2mb_aligned(buf.data()));
  EXPECT_EQ(hugepage_stats().huge_requests, 1u);
  buf.zero_range(0, buf.size());
  EXPECT_EQ(buf[0], 0.0f);
}

TEST(HugePages, StatsResetClearsCounters) {
  const ScopedEnv env("S35_HUGEPAGES", "1");
  void* p = aligned_malloc(2 * kHugePageBytes);
  ASSERT_NE(p, nullptr);
  aligned_free(p);
  EXPECT_GE(hugepage_stats().huge_requests, 1u);
  reset_hugepage_stats();
  const HugePageStats s = hugepage_stats();
  EXPECT_EQ(s.huge_requests, 0u);
  EXPECT_EQ(s.huge_bytes, 0u);
  EXPECT_EQ(s.fallbacks, 0u);
}

// The fallback contract: when the strict 2 MB-aligned path cannot be taken,
// aligned_malloc must still return usable 64 B-aligned memory. The refusal
// branch itself needs an allocator failure to trigger, which cannot be
// forced portably — what is testable is that the fallback path (the default
// path) satisfies the same usability contract the caller relies on.
TEST(HugePages, FallbackPathContractHolds) {
  const ScopedEnv env("S35_HUGEPAGES", nullptr);
  void* p = aligned_malloc(4 * kHugePageBytes);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes, 0u);
  auto* bytes = static_cast<unsigned char*>(p);
  bytes[0] = 1;
  bytes[4 * kHugePageBytes - 1] = 2;
  aligned_free(p);
}

}  // namespace
}  // namespace s35
