// Roofline arithmetic (telemetry/roofline.h): attained-vs-ceiling math
// against hand-computed Table I numbers, phase attribution normalization,
// and the record-level JSON emission of the "roofline" block.
#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/report.h"
#include "telemetry/roofline.h"

namespace s35::telemetry {
namespace {

// The paper's Core i7 running the SP 7-point stencil with 3.5D blocking:
// 30 GB/s peak / 22 GB/s achievable, 102 Gops; kernel 16 ops (2 mul +
// 6 add = 8 flops, plus 8 memory insts), 4 B/update after blocking at
// dim_t=2 with streaming stores (8 ideal / 2).
RooflineInput i7_35d_input() {
  RooflineInput in;
  in.mups = 3000.0;
  in.bytes_per_update = 4.0;
  in.flops_per_update = 8.0;
  in.ops_per_update = 16.0;
  in.peak_bw_gbps = 30.0;
  in.achievable_bw_gbps = 22.0;
  in.peak_gops = 102.0;
  in.effective_gops = 102.0;
  return in;
}

TEST(Roofline, AttainedMatchesHandComputation) {
  const RooflineResult r = compute_roofline(i7_35d_input());
  // 3000 Mupd/s · 4 B = 12 GB/s; · 8 flops = 24 Gflop/s; · 16 ops = 48 Gops.
  EXPECT_DOUBLE_EQ(r.attained_gbps, 12.0);
  EXPECT_DOUBLE_EQ(r.attained_gflops, 24.0);
  EXPECT_DOUBLE_EQ(r.attained_gops, 48.0);
  EXPECT_DOUBLE_EQ(r.arithmetic_intensity, 2.0);
  EXPECT_DOUBLE_EQ(r.bw_fraction, 12.0 / 22.0);
  EXPECT_DOUBLE_EQ(r.bw_fraction_peak, 12.0 / 30.0);
  EXPECT_DOUBLE_EQ(r.compute_fraction, 48.0 / 102.0);
}

TEST(Roofline, CeilingsNormalizeAgainstDescriptorPeaks) {
  const RooflineResult r = compute_roofline(i7_35d_input());
  // Bandwidth roof: 22 GB/s ÷ 4 B/update = 5500 Mupd/s.
  EXPECT_DOUBLE_EQ(r.ceiling_mups_bw, 5500.0);
  // Compute roof: 102 Gops ÷ 16 ops/update = 6375 Mupd/s.
  EXPECT_DOUBLE_EQ(r.ceiling_mups_compute, 6375.0);
  EXPECT_DOUBLE_EQ(r.ceiling_mups, 5500.0);
  EXPECT_TRUE(r.memory_bound);
  EXPECT_DOUBLE_EQ(r.roofline_fraction, 3000.0 / 5500.0);
}

TEST(Roofline, TemporalBlockingFlipsMemoryBoundToComputeBound) {
  // Raise dim_t until bytes/update drop below the balance point: the same
  // machine becomes compute bound — eq. 3's purpose.
  RooflineInput in = i7_35d_input();
  in.bytes_per_update = 1.0;  // deep temporal blocking
  const RooflineResult r = compute_roofline(in);
  EXPECT_DOUBLE_EQ(r.ceiling_mups_bw, 22000.0);
  EXPECT_DOUBLE_EQ(r.ceiling_mups_compute, 6375.0);
  EXPECT_FALSE(r.memory_bound);
  EXPECT_DOUBLE_EQ(r.ceiling_mups, 6375.0);
}

TEST(Roofline, MissingInputsYieldZerosNotInf) {
  const RooflineResult r = compute_roofline(RooflineInput{});
  EXPECT_EQ(r.attained_gbps, 0.0);
  EXPECT_EQ(r.ceiling_mups, 0.0);
  EXPECT_EQ(r.roofline_fraction, 0.0);
  EXPECT_TRUE(std::isfinite(r.arithmetic_intensity));
}

TEST(Roofline, AchievableAndEffectiveFallBackToPeaks) {
  RooflineInput in = i7_35d_input();
  in.achievable_bw_gbps = 0.0;  // only the theoretical peak known
  const RooflineResult r = compute_roofline(in);
  EXPECT_DOUBLE_EQ(r.ceiling_mups_bw, 30.0 / 4.0 * 1e3);
  EXPECT_DOUBLE_EQ(r.bw_fraction, r.bw_fraction_peak);
}

TEST(Roofline, SingleKnownCeilingBecomesTheRoof) {
  RooflineInput in = i7_35d_input();
  in.bytes_per_update = 0.0;  // no traffic measurement (model record)
  const RooflineResult r = compute_roofline(in);
  EXPECT_EQ(r.ceiling_mups_bw, 0.0);
  EXPECT_DOUBLE_EQ(r.ceiling_mups, r.ceiling_mups_compute);
  EXPECT_FALSE(r.memory_bound);
}

TEST(Roofline, MapCarriesInputsAndDerivedValues) {
  const RooflineInput in = i7_35d_input();
  const auto m = roofline_map(in, compute_roofline(in));
  EXPECT_DOUBLE_EQ(m.at("peak_bw_gbps"), 30.0);
  EXPECT_DOUBLE_EQ(m.at("attained_gbps"), 12.0);
  EXPECT_DOUBLE_EQ(m.at("ceiling_mups"), 5500.0);
  EXPECT_DOUBLE_EQ(m.at("memory_bound"), 1.0);
}

TEST(Roofline, PhaseAttributionSumsToOneExcludingRegion) {
  Totals t;
  t.seconds[static_cast<int>(Phase::kCompute)] = 3.0;
  t.seconds[static_cast<int>(Phase::kGhostFill)] = 0.5;
  t.seconds[static_cast<int>(Phase::kBarrierWait)] = 0.5;
  // kRegion is the enclosing envelope, not a sibling phase: must not skew
  // the denominator.
  t.seconds[static_cast<int>(Phase::kRegion)] = 4.2;
  const auto m = phase_attribution(t);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m.at("phase_compute_frac"), 0.75);
  EXPECT_DOUBLE_EQ(m.at("phase_ghost_fill_frac"), 0.125);
  EXPECT_DOUBLE_EQ(m.at("phase_barrier_wait_frac"), 0.125);
  double sum = 0.0;
  for (const auto& [k, v] : m) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_EQ(m.count("phase_region_frac"), 0u);
}

TEST(Roofline, PhaseAttributionEmptyWhenNothingRecorded) {
  EXPECT_TRUE(phase_attribution(Totals{}).empty());
}

TEST(Roofline, RecordEmitsRooflineBlockOnlyWhenPresent) {
  BenchRecord rec;
  rec.kernel = "stencil7";
  EXPECT_EQ(to_json(rec).find("\"roofline\""), std::string::npos);

  const RooflineInput in = i7_35d_input();
  rec.roofline = roofline_map(in, compute_roofline(in));
  const std::string json = to_json(rec);
  EXPECT_NE(json.find("\"roofline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"ceiling_mups\":5500"), std::string::npos);
}

}  // namespace
}  // namespace s35::telemetry
