#include <gtest/gtest.h>

#include <cmath>

#include "lbm/periodic.h"
#include "lbm/sweeps.h"

namespace s35::lbm {
namespace {

// TRT with omega_minus = omega_plus is mathematically BGK; the different
// expression tree only leaves rounding noise.
TEST(Trt, EqualRatesMatchBgk) {
  using SV = simd::Vec<double, simd::ScalarTag>;
  SV fin[kQ], bgk[kQ], trt[kQ];
  for (int i = 0; i < kQ; ++i) fin[i] = SV{0.02 + 0.004 * i};
  bgk_collide<SV, double>(fin, bgk, 1.3);
  trt_collide<SV, double>(fin, trt, 1.3, 1.3);
  for (int i = 0; i < kQ; ++i) EXPECT_NEAR(trt[i].v, bgk[i].v, 1e-14);
}

TEST(Trt, ConservesMassAndMomentum) {
  using SV = simd::Vec<double, simd::ScalarTag>;
  SV fin[kQ], fout[kQ];
  for (int i = 0; i < kQ; ++i) fin[i] = SV{0.01 + 0.003 * ((i * 7) % 19)};
  trt_collide<SV, double>(fin, fout, 0.8, 1.6);
  double rho_in = 0, rho_out = 0, m_in[3] = {}, m_out[3] = {};
  for (int i = 0; i < kQ; ++i) {
    rho_in += fin[i].v;
    rho_out += fout[i].v;
    m_in[0] += kCx[i] * fin[i].v;
    m_out[0] += kCx[i] * fout[i].v;
    m_in[1] += kCy[i] * fin[i].v;
    m_out[1] += kCy[i] * fout[i].v;
    m_in[2] += kCz[i] * fin[i].v;
    m_out[2] += kCz[i] * fout[i].v;
  }
  EXPECT_NEAR(rho_out, rho_in, 1e-13);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(m_out[c], m_in[c], 1e-13);
}

TEST(Trt, MagicParameterInversion) {
  for (double wp : {0.6, 1.0, 1.4, 1.9}) {
    const double wm = trt_omega_minus(wp, 3.0 / 16.0);
    const double magic = (1.0 / wp - 0.5) * (1.0 / wm - 0.5);
    EXPECT_NEAR(magic, 3.0 / 16.0, 1e-12);
  }
}

// The blocked variants must agree with naive bit-for-bit under TRT too.
TEST(Trt, VariantsAgreeBitExact) {
  const long n = 18;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  BgkParams<float> prm;
  prm.omega = 1.1f;
  prm.u_wall[0] = 0.05f;
  prm.trt_magic = 3.0f / 16.0f;

  core::Engine35 engine(2);
  LatticePair<float> ref(n, n, n);
  ref.src().init_equilibrium();
  run_lbm(Variant::kNaive, geom, prm, ref, 5, {}, engine);

  for (Variant v : {Variant::kBlocked35D, Variant::kBlocked4D, Variant::kTemporalOnly}) {
    LatticePair<float> got(n, n, n);
    got.src().init_equilibrium();
    SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = 12;
    run_lbm(v, geom, prm, got, 5, cfg, engine);
    long bad = 0;
    for (int i = 0; i < kQ; ++i)
      for (long z = 0; z < n; ++z)
        for (long y = 0; y < n; ++y)
          for (long x = 0; x < n; ++x) {
            const float a = ref.src().at(i, x, y, z);
            const float b = got.src().at(i, x, y, z);
            if (std::memcmp(&a, &b, sizeof(float)) != 0) ++bad;
          }
    EXPECT_EQ(bad, 0) << to_string(v);
  }
}

// The physics payoff: with half-way bounce-back, BGK's effective wall
// position shifts with omega (visible slip error in the Poiseuille
// parabola at omega far from ~1.2), while TRT at the magic value
// Lambda = 3/16 keeps the wall exactly mid-link at every viscosity.
TEST(Trt, MagicFixesPoiseuilleWallsAtLowOmega) {
  const long nx = 8, ny = 18, nz = 8;
  const double omega = 0.7;  // high viscosity: large BGK slip error

  const auto run_profile_error = [&](double magic) {
    PeriodicLbmDriver<double>::Options opt;
    opt.dim_t = 3;
    PeriodicLbmDriver<double> driver(nx, ny, nz, opt);
    driver.finalize();
    BgkParams<double> prm;
    prm.omega = omega;
    prm.force[0] = 1e-6;
    prm.trt_magic = magic;
    core::Engine35 engine(2);
    driver.run(6000, prm, engine);

    const double nu = (1.0 / omega - 0.5) / 3.0;
    const double y0 = 0.5, y1 = ny - 1.5;
    const double umax = prm.force[0] * (y1 - y0) * (y1 - y0) / (8.0 * nu);
    double worst = 0.0;
    for (long y = 1; y < ny - 1; ++y) {
      double u[3];
      driver.velocity(nx / 2, y, nz / 2, u);
      const double expect = prm.force[0] * (y - y0) * (y1 - y) / (2.0 * nu);
      worst = std::max(worst, std::abs(u[0] - expect) / umax);
    }
    return worst;
  };

  const double bgk_err = run_profile_error(0.0);
  const double trt_err = run_profile_error(3.0 / 16.0);
  EXPECT_LT(trt_err, 0.005);           // exact walls up to convergence
  EXPECT_GT(bgk_err, 3.0 * trt_err);   // BGK slip clearly visible
}

}  // namespace
}  // namespace s35::lbm
