#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "core/planner.h"
#include "lbm/sweeps.h"
#include "memsim/traffic.h"
#include "stencil/stencil_star.h"
#include "stencil/sweeps.h"

namespace s35 {
namespace {

// Cross-family bit-exactness: every schedule family (paper 3.5D, deep 3.5D
// with register row-pair fusion, diamond mountains/valleys) must reproduce
// the naive sweep bit for bit — for every kernel, radius, ISA, and the
// degenerate shapes (odd dims, nz below the minimal diamond width, tiles
// wider than the domain). FMA stays off: bit-exactness is the contract.

using core::ScheduleFamily;

constexpr ScheduleFamily kFamilies[] = {
    ScheduleFamily::kPaper35D,
    ScheduleFamily::kDeep35D,
    ScheduleFamily::kDiamond,
};

constexpr simd::Isa kIsaLadder[] = {simd::Isa::kScalar, simd::Isa::kSse,
                                    simd::Isa::kAvx, simd::Isa::kAvx2};

std::string label_of(ScheduleFamily fam, long nx, long ny, long nz, int steps,
                     const stencil::SweepConfig& cfg) {
  return std::string(core::to_string(fam)) + " " + std::to_string(nx) + "x" +
         std::to_string(ny) + "x" + std::to_string(nz) +
         " steps=" + std::to_string(steps) + " dt=" + std::to_string(cfg.dim_t) +
         " tile=" + std::to_string(cfg.dim_x) + "x" + std::to_string(cfg.dim_y) +
         " W=" + std::to_string(cfg.dim_z) + " isa=" + simd::to_string(cfg.kernel.isa);
}

// Runs the 3.5D-blocked sweep under `cfg` for every family and asserts each
// matches the naive reference bit for bit.
template <typename S>
void check_families(const S& stencil, long nx, long ny, long nz, int steps,
                    stencil::SweepConfig cfg, int threads = 3) {
  grid::GridPair<float> expected(nx, ny, nz);
  expected.src().fill_random(9090, -1.0f, 1.0f);
  core::Engine35 ref_engine(1);
  stencil::run_sweep(stencil::Variant::kNaive, stencil, expected, steps, {},
                     ref_engine);

  core::Engine35 engine(threads);
  for (const ScheduleFamily fam : kFamilies) {
    cfg.family = fam;
    grid::GridPair<float> got(nx, ny, nz);
    got.src().fill_random(9090, -1.0f, 1.0f);
    stencil::run_sweep_auto(stencil::Variant::kBlocked35D, stencil, got, steps, cfg,
                            engine);
    ASSERT_EQ(grid::count_mismatches(expected.src(), got.src()), 0)
        << label_of(fam, nx, ny, nz, steps, cfg);
  }
}

TEST(ScheduleFamilies, SevenPointOddShapesAcrossIsaLadder) {
  const auto stencil = stencil::default_stencil7<float>();
  for (const simd::Isa isa : kIsaLadder) {
    stencil::SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = cfg.dim_y = 13;  // odd tile, does not divide the domain
    cfg.kernel.isa = isa;
    check_families(stencil, 17, 13, 19, /*steps=*/5, cfg);
  }
}

TEST(ScheduleFamilies, SevenPointDeeperTemporalAndRaggedSteps) {
  const auto stencil = stencil::default_stencil7<float>();
  stencil::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = cfg.dim_y = 24;
  cfg.kernel.isa = simd::Isa::kAvx2;
  // steps not a multiple of dim_t: the last pass runs with a shorter depth.
  check_families(stencil, 29, 31, 27, /*steps=*/7, cfg);
}

TEST(ScheduleFamilies, TwentySevenPointAcrossIsaLadder) {
  const auto stencil = stencil::default_stencil27<float>();
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    stencil::SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = cfg.dim_y = 16;
    cfg.kernel.isa = isa;
    check_families(stencil, 21, 18, 23, /*steps=*/4, cfg);
  }
}

// Radius 2: diamond minimal width 2R*dim_t+1 = 9, ring depth 6 for the
// wavefront families — the general-R machinery under every family.
TEST(ScheduleFamilies, Radius2StarAcrossIsaLadder) {
  const auto stencil = stencil::default_star2<float>();
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    stencil::SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = cfg.dim_y = 20;
    cfg.kernel.isa = isa;
    check_families(stencil, 26, 22, 25, /*steps=*/4, cfg);
  }
}

// nz at or below the minimal mountain width: the diamond degenerates to a
// single mountain (K = 1, both frozen shells owned by it) and must still be
// exact. Also covers tiles wider than the tiny domain.
TEST(ScheduleFamilies, DiamondDegenerateTinyNz) {
  const auto stencil = stencil::default_stencil7<float>();
  // R=1, dim_t=3 -> minimal W = 7; nz in {5, 7, 8} straddles it.
  for (const long nz : {5L, 7L, 8L}) {
    stencil::SweepConfig cfg;
    cfg.dim_t = 3;
    cfg.dim_x = cfg.dim_y = 64;  // wider than the domain
    check_families(stencil, 15, 17, nz, /*steps=*/6, cfg);
  }
}

// The mountain width is a free knob: every width at or above the minimum
// (and the serialized flag, which the diamond family force-disables) must
// leave the result bit-identical.
TEST(ScheduleFamilies, DiamondWidthOverridesBitExact) {
  const auto stencil = stencil::default_stencil7<float>();
  const long nx = 23, ny = 19, nz = 33;
  const int steps = 4, dim_t = 2;  // minimal W = 5

  grid::GridPair<float> expected(nx, ny, nz);
  expected.src().fill_random(4242, -1.0f, 1.0f);
  core::Engine35 ref_engine(1);
  stencil::run_sweep(stencil::Variant::kNaive, stencil, expected, steps, {},
                     ref_engine);

  core::Engine35 engine(4);
  for (const long width : {0L, 7L, 10L, 33L, 64L}) {
    for (const bool serialized : {false, true}) {
      stencil::SweepConfig cfg;
      cfg.dim_t = dim_t;
      cfg.dim_x = cfg.dim_y = 12;
      cfg.dim_z = width;
      cfg.family = ScheduleFamily::kDiamond;
      cfg.serialized = serialized;
      grid::GridPair<float> got(nx, ny, nz);
      got.src().fill_random(4242, -1.0f, 1.0f);
      stencil::run_sweep_auto(stencil::Variant::kBlocked35D, stencil, got, steps,
                              cfg, engine);
      ASSERT_EQ(grid::count_mismatches(expected.src(), got.src()), 0)
          << "W=" << width << (serialized ? " ser" : "");
    }
  }
}

TEST(ScheduleFamilies, LbmAcrossFamiliesBitExact) {
  const long nx = 15, ny = 13, nz = 17;
  const int steps = 4;

  lbm::Geometry geom(nx, ny, nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 0.9f;
  prm.u_wall[0] = 0.04f;

  lbm::LatticePair<float> expected(nx, ny, nz);
  expected.src().init_equilibrium();
  core::Engine35 ref_engine(1);
  lbm::run_lbm(lbm::Variant::kNaive, geom, prm, expected, steps, {}, ref_engine);

  core::Engine35 engine(3);
  for (const ScheduleFamily fam : kFamilies) {
    lbm::SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = cfg.dim_y = 9;
    cfg.family = fam;
    lbm::LatticePair<float> got(nx, ny, nz);
    got.src().init_equilibrium();
    lbm::run_lbm_auto(lbm::Variant::kBlocked35D, geom, prm, got, steps, cfg, engine);

    long bad = 0;
    for (int i = 0; i < lbm::kQ && bad == 0; ++i)
      for (long z = 0; z < nz; ++z)
        for (long y = 0; y < ny; ++y)
          for (long x = 0; x < nx; ++x) {
            const float a = expected.src().at(i, x, y, z);
            const float b = got.src().at(i, x, y, z);
            if (std::memcmp(&a, &b, sizeof(float)) != 0) ++bad;
          }
    ASSERT_EQ(bad, 0) << core::to_string(fam);
  }
}

// ------------------------------------------------- memsim model validation

// The planner's per-family traffic model (core::predicted_bytes_per_update)
// must agree with the simulated external traffic of the same schedule: the
// prediction is what prunes the autotuner's candidate list, so a model that
// drifts from the replay silently mis-ranks families.

memsim::TraceConfig traffic_cfg(long n, int steps) {
  memsim::TraceConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = n;
  cfg.steps = steps;
  cfg.elem_bytes = 4;
  cfg.radius = 1;
  cfg.streaming_stores = true;  // bytes_ideal = read + write = 8 B/update
  cfg.cache.size_bytes = 1u << 20;
  cfg.cache.ways = 16;
  return cfg;
}

TEST(ScheduleFamilyTraffic, Deep35dMatchesAnalyticModel) {
  auto cfg = traffic_cfg(96, 4);
  cfg.family = core::ScheduleFamily::kDeep35D;
  cfg.dim_t = 4;
  cfg.dim_x = cfg.dim_y = 64;
  const double traced =
      memsim::trace_stencil(memsim::Scheme::kBlocked35D, cfg).bytes_per_update();
  const double predicted = core::predicted_bytes_per_update(
      cfg.family, 8.0, cfg.radius, cfg.dim_t, cfg.dim_x, cfg.dim_y);
  EXPECT_NEAR(traced, predicted, 0.35 * predicted);
}

TEST(ScheduleFamilyTraffic, DiamondMatchesAnalyticModel) {
  // n chosen so the whole-plane ring buffers (min(2W,nz) planes per time
  // level) fit the 1 MB simulated LLC while the grid itself does not.
  auto cfg = traffic_cfg(64, 4);
  cfg.family = core::ScheduleFamily::kDiamond;
  cfg.dim_t = 2;
  cfg.dim_x = cfg.dim_y = 64;  // whole-plane XY, the planner's diamond shape
  cfg.dim_z = 0;               // minimal mountain width
  const double traced =
      memsim::trace_stencil(memsim::Scheme::kBlocked35D, cfg).bytes_per_update();
  const double predicted = core::predicted_bytes_per_update(
      cfg.family, 8.0, cfg.radius, cfg.dim_t, /*dim_x=*/0, /*dim_y=*/0);
  EXPECT_NEAR(traced, predicted, 0.35 * predicted);
}

// kappa = 1: at equal depth the whole-plane diamond must move no more
// external bytes than the XY-tiled paper schedule (which pays ghost-zone
// recompute traffic).
TEST(ScheduleFamilyTraffic, DiamondBeatsPaperKappaAtEqualDepth) {
  auto paper = traffic_cfg(64, 4);
  paper.dim_t = 2;
  paper.dim_x = paper.dim_y = 48;
  const double paper_bpu =
      memsim::trace_stencil(memsim::Scheme::kBlocked35D, paper).bytes_per_update();

  auto diamond = traffic_cfg(64, 4);
  diamond.family = core::ScheduleFamily::kDiamond;
  diamond.dim_t = 2;
  diamond.dim_x = diamond.dim_y = 64;
  const double diamond_bpu =
      memsim::trace_stencil(memsim::Scheme::kBlocked35D, diamond).bytes_per_update();

  EXPECT_LT(diamond_bpu, 1.02 * paper_bpu);
}

}  // namespace
}  // namespace s35
