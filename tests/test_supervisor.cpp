// Supervised worker plane: wire-protocol framing, crash/hang/SDC failover
// (bit-exact against an in-process run, exactly one terminal per job),
// graceful drain, and the abandoned-plane failure path.
//
// Every Supervisor test forks real worker processes; this suite must NOT
// run under ThreadSanitizer (TSan does not support multithreaded fork),
// so CI's TSan leg excludes it by name.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/crc32c.h"
#include "fault/fault_plan.h"
#include "grid/grid3.h"
#include "machine/descriptor.h"
#include "service/backend.h"
#include "service/service.h"
#include "service/supervisor.h"
#include "service/tenancy.h"
#include "service/wire.h"

namespace s35 {
namespace {

using service::JobResult;
using service::JobService;
using service::JobSpec;
using service::JobState;
using service::ServiceOptions;
using service::Supervisor;
using service::SupervisorOptions;

// Deterministic machine identity: no host probing, stable plans in every
// worker — a precondition for cross-process bit-exactness assertions.
ServiceOptions worker_options() {
  ServiceOptions o;
  o.threads = 2;
  o.mach = machine::core_i7();
  return o;
}

SupervisorOptions sup_options(int workers) {
  SupervisorOptions o;
  o.workers = workers;
  o.beat_ms = 20;
  o.checkpoint_dir = ::testing::TempDir();
  o.checkpoint_every = 1;
  o.service = worker_options();
  return o;
}

// Small multi-pass job with a pinned plan, so the reference run and every
// worker (first attempt or post-failover resume) sweep identically.
JobSpec test_spec() {
  JobSpec spec;
  spec.nx = 20;
  spec.steps = 6;
  spec.dim_x = 8;
  spec.dim_y = 8;
  spec.dim_t = 1;  // 6 single-step passes: room for mid-job faults
  spec.seed = 1234;
  return spec;
}

// Fault-free in-process reference CRC for `spec` under the same options.
std::uint32_t reference_crc(const JobSpec& spec) {
  JobService svc(worker_options());
  const auto id = svc.submit(spec);
  EXPECT_TRUE(id.ok());
  const auto done = svc.wait(id.value());
  EXPECT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kDone) << done->result.message;
  return done->result.crc;
}

// ------------------------------------------------------------------- wire

TEST(WireTest, SpecRoundtripCarriesEveryField) {
  JobSpec spec = test_spec();
  spec.kernel = "7pt";
  spec.ny = 24;
  spec.nz = 28;
  spec.priority = 3;
  spec.deadline_ms = 1500;
  spec.streaming_stores = true;
  spec.audit = true;
  spec.audit_rate = 0.5;
  spec.checkpoint_path = "/tmp/job-7.ckpt";
  spec.checkpoint_every = 2;
  spec.resume = true;

  const std::string json = service::wire::spec_to_json(7, spec);
  std::uint64_t job = 0;
  JobSpec back;
  ASSERT_TRUE(service::wire::spec_from_json(json, &job, &back)) << json;
  EXPECT_EQ(job, 7u);
  EXPECT_EQ(back.kernel, spec.kernel);
  EXPECT_EQ(back.nx, spec.nx);
  EXPECT_EQ(back.ny, spec.ny);
  EXPECT_EQ(back.nz, spec.nz);
  EXPECT_EQ(back.steps, spec.steps);
  EXPECT_EQ(back.dim_x, spec.dim_x);
  EXPECT_EQ(back.dim_y, spec.dim_y);
  EXPECT_EQ(back.dim_t, spec.dim_t);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.deadline_ms, spec.deadline_ms);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.streaming_stores, spec.streaming_stores);
  EXPECT_EQ(back.audit, spec.audit);
  EXPECT_DOUBLE_EQ(back.audit_rate, spec.audit_rate);
  EXPECT_EQ(back.checkpoint_path, spec.checkpoint_path);
  EXPECT_EQ(back.checkpoint_every, spec.checkpoint_every);
  EXPECT_EQ(back.resume, spec.resume);
}

TEST(WireTest, ResultRoundtrip) {
  JobResult r;
  r.crc = 0xDEADBEEF;
  r.steps_done = 6;
  r.dim_x = 8;
  r.dim_y = 8;
  r.dim_t = 1;
  r.plan_cache_hit = true;
  r.resumed_steps = 2;
  r.checkpoints = 4;
  r.sdc_detected = 1;
  r.error = fault::ErrorCode::kSdcDetected;
  r.message = "injected \"quoted\" failure";

  const std::string json =
      service::wire::result_to_json(9, JobState::kFailed, r);
  std::uint64_t job = 0;
  JobState state = JobState::kQueued;
  JobResult back;
  ASSERT_TRUE(service::wire::result_from_json(json, &job, &state, &back))
      << json;
  EXPECT_EQ(job, 9u);
  EXPECT_EQ(state, JobState::kFailed);
  EXPECT_EQ(back.crc, r.crc);
  EXPECT_EQ(back.steps_done, r.steps_done);
  EXPECT_TRUE(back.plan_cache_hit);
  EXPECT_EQ(back.resumed_steps, 2);
  EXPECT_EQ(back.checkpoints, 4);
  EXPECT_EQ(back.sdc_detected, 1u);
  EXPECT_EQ(back.error, fault::ErrorCode::kSdcDetected);
  EXPECT_EQ(back.message, r.message);
}

TEST(WireTest, FramesSurvivePartialDeliveryAndRejectBadMagic) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  // Whole-frame write, then read back.
  ASSERT_TRUE(service::wire::write_frame(
      sv[0], service::wire::FrameType::kBeat, R"({"job":1,"progress":3})"));
  std::string acc;
  service::wire::Frame f;
  ASSERT_EQ(service::wire::read_frame(sv[1], &acc, &f, 1000), 1);
  EXPECT_EQ(f.type, service::wire::FrameType::kBeat);
  EXPECT_EQ(f.payload, R"({"job":1,"progress":3})");

  // Torn delivery: header and payload dribble in byte-sized writes.
  const std::string payload = R"({"job":2})";
  std::uint32_t hdr[3] = {service::wire::kMagic,
                          static_cast<std::uint32_t>(
                              service::wire::FrameType::kCancel),
                          static_cast<std::uint32_t>(payload.size())};
  std::string raw(reinterpret_cast<const char*>(hdr), sizeof hdr);
  raw += payload;
  for (char c : raw) ASSERT_EQ(::write(sv[0], &c, 1), 1);
  ASSERT_EQ(service::wire::read_frame(sv[1], &acc, &f, 1000), 1);
  EXPECT_EQ(f.type, service::wire::FrameType::kCancel);
  EXPECT_EQ(f.payload, payload);

  // A corrupt magic is a protocol violation, not a silent resync.
  hdr[0] = 0x41414141;
  ASSERT_EQ(::write(sv[0], hdr, sizeof hdr), static_cast<ssize_t>(sizeof hdr));
  EXPECT_EQ(service::wire::read_frame(sv[1], &acc, &f, 1000), -1);

  ::close(sv[0]);
  ::close(sv[1]);
}

// ------------------------------------------------------------- supervisor

TEST(SupervisorTest, RunsJobsBitExactAcrossWorkers) {
  const JobSpec spec = test_spec();
  const std::uint32_t want = reference_crc(spec);

  Supervisor sup(sup_options(2));
  std::uint64_t ids[3];
  for (auto& id : ids) {
    const auto r = sup.submit(spec);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    id = r.value();
  }
  for (const auto id : ids) {
    const auto done = sup.wait(id, 60'000);
    ASSERT_TRUE(done.has_value());
    ASSERT_EQ(done->state, JobState::kDone) << done->result.message;
    EXPECT_EQ(done->result.steps_done, spec.steps);
    EXPECT_EQ(done->result.crc, want);
  }
  const auto s = sup.stats();
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.worker_deaths, 0u);
  EXPECT_EQ(s.failovers, 0u);
}

TEST(SupervisorTest, RejectsBadSpecs) {
  Supervisor sup(sup_options(1));
  JobSpec bad;
  bad.kernel = "9pt";
  EXPECT_EQ(sup.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  bad = {};
  bad.steps = 0;
  EXPECT_EQ(sup.submit(bad).status().code(), fault::ErrorCode::kMismatch);
  EXPECT_GE(sup.stats().rejected, 2u);
}

// SIGKILL mid-job: the job fails over to the sibling, resumes from the
// pass-boundary checkpoint, and ends bit-identical to a fault-free run —
// with exactly one terminal result recorded.
TEST(SupervisorTest, KillFailoverIsBitExactAndExactlyOnce) {
  const JobSpec spec = test_spec();
  const std::uint32_t want = reference_crc(spec);

  fault::FaultPlan faults(7);
  faults.kill_worker = 0;
  faults.kill_worker_pass = 2;  // checkpoints for passes 0..2 are durable
  SupervisorOptions o = sup_options(2);
  o.faults = &faults;

  Supervisor sup(o);
  const auto id = sup.submit(spec);
  ASSERT_TRUE(id.ok());
  const auto done = sup.wait(id.value(), 60'000);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone) << done->result.message;
  EXPECT_EQ(done->result.crc, want);
  EXPECT_EQ(done->result.steps_done, spec.steps);
  EXPECT_GT(done->result.resumed_steps, 0);  // resumed, not restarted

  const auto s = sup.stats();
  EXPECT_EQ(faults.counters().worker_kills, 1u);
  EXPECT_GE(s.worker_deaths, 1u);
  EXPECT_GE(s.failovers, 1u);
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);  // exactly one terminal, no duplicates
  EXPECT_EQ(s.failed, 0u);
}

// A stalled worker keeps heartbeating but its pass progress freezes; the
// supervisor must kill on progress staleness, then fail the job over.
TEST(SupervisorTest, HangDetectionKillsAndFailsOver) {
  const JobSpec spec = test_spec();
  const std::uint32_t want = reference_crc(spec);

  fault::FaultPlan faults(7);
  faults.stall_worker = 0;
  faults.stall_worker_pass = 1;
  faults.stall_worker_ms = 20'000;  // far beyond hang_ms: a real hang
  SupervisorOptions o = sup_options(2);
  o.hang_ms = 250;
  o.faults = &faults;

  Supervisor sup(o);
  const auto id = sup.submit(spec);
  ASSERT_TRUE(id.ok());
  const auto done = sup.wait(id.value(), 60'000);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone) << done->result.message;
  EXPECT_EQ(done->result.crc, want);

  const auto s = sup.stats();
  EXPECT_GE(s.hang_kills, 1u);
  EXPECT_GE(s.failovers, 1u);
  EXPECT_EQ(s.completed, 1u);
}

// kSdcDetected past the in-process recovery ladder recycles the worker and
// fails the job over like a crash.
TEST(SupervisorTest, SdcEscalationRecyclesWorkerAndFailsOver) {
  const JobSpec spec = test_spec();
  const std::uint32_t want = reference_crc(spec);

  fault::FaultPlan faults(7);
  faults.sdc_worker = 0;
  faults.sdc_worker_pass = 1;
  SupervisorOptions o = sup_options(2);
  o.faults = &faults;

  Supervisor sup(o);
  const auto id = sup.submit(spec);
  ASSERT_TRUE(id.ok());
  const auto done = sup.wait(id.value(), 60'000);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone) << done->result.message;
  EXPECT_EQ(done->result.crc, want);

  const auto s = sup.stats();
  EXPECT_GE(s.sdc_escalations, 1u);
  EXPECT_GE(s.failovers, 1u);
  EXPECT_EQ(s.completed, 1u);
}

// With the whole plane abandoned (single worker, no restarts allowed), an
// in-flight job must fail promptly instead of hanging its client forever.
TEST(SupervisorTest, AbandonedPlaneFailsActiveJobs) {
  fault::FaultPlan faults(7);
  faults.kill_worker = 0;
  faults.kill_worker_pass = 0;
  SupervisorOptions o = sup_options(1);
  o.max_restarts = 0;
  o.faults = &faults;

  Supervisor sup(o);
  const auto id = sup.submit(test_spec());
  ASSERT_TRUE(id.ok());
  const auto done = sup.wait(id.value(), 60'000);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kFailed);
  EXPECT_EQ(done->result.error, fault::ErrorCode::kUnavailable);

  const auto s = sup.stats();
  EXPECT_EQ(s.worker_deaths, 1u);
  EXPECT_EQ(s.workers_live, 0u);
  EXPECT_EQ(s.failed, 1u);
}

// Cancellation through the supervised plane: a queued or running job ends
// terminal exactly once, and accounting stays conserved.
TEST(SupervisorTest, CancelQueuedOrRunningJob) {
  Supervisor sup(sup_options(1));
  JobSpec slow = test_spec();
  slow.nx = 32;
  slow.steps = 600;  // ~600 pass boundaries: cancellation lands mid-run
  const auto a = sup.submit(slow);
  const auto b = sup.submit(test_spec());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(sup.cancel(b.value()));
  EXPECT_FALSE(sup.cancel(999));  // unknown id
  sup.cancel(a.value());

  const auto da = sup.wait(a.value(), 60'000);
  const auto db = sup.wait(b.value(), 60'000);
  ASSERT_TRUE(da.has_value() && db.has_value());
  EXPECT_TRUE(da->state == JobState::kCancelled || da->state == JobState::kDone);
  EXPECT_TRUE(db->state == JobState::kCancelled || db->state == JobState::kDone);
  const auto s = sup.stats();
  EXPECT_EQ(s.completed + s.cancelled, 2u);
  EXPECT_GE(s.cancelled, 1u);
}

// shutdown() is a graceful drain: every accepted job reaches a terminal
// state (workers finish and exit 0), and stats survive the teardown.
TEST(SupervisorTest, ShutdownDrainsAcceptedJobs) {
  Supervisor sup(sup_options(2));
  const JobSpec spec = test_spec();
  std::uint64_t ids[4];
  for (auto& id : ids) {
    const auto r = sup.submit(spec);
    ASSERT_TRUE(r.ok());
    id = r.value();
  }
  sup.shutdown();
  sup.shutdown();  // idempotent
  for (const auto id : ids) {
    const auto info = sup.info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::kDone) << info->result.message;
  }
  EXPECT_EQ(sup.stats().completed, 4u);
  EXPECT_FALSE(sup.submit(spec).ok());  // no admission after drain
}

// A job whose worker dies is poison: with a one-strike breaker the first
// loss quarantines the (tenant, shape) pair instead of burning a second
// worker, and a cooled-down half-open probe later readmits it bit-exact.
TEST(SupervisorTest, QuarantineCircuitBreaksPoisonJobsThenRecovers) {
  JobSpec spec = test_spec();
  spec.tenant = "tox";
  const std::uint32_t want = reference_crc(spec);

  fault::FaultPlan faults(7);
  faults.kill_worker = 0;
  faults.kill_worker_pass = 2;
  SupervisorOptions o = sup_options(2);
  o.faults = &faults;
  o.tenancy.quarantine_kills = 1;
  o.tenancy.quarantine_cooldown_ms = 2'000;

  Supervisor sup(o);
  const auto id = sup.submit(spec);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const auto dead = sup.wait(id.value(), 60'000);
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->state, JobState::kFailed) << to_string(dead->state);
  EXPECT_NE(dead->result.message.find("quarantined"), std::string::npos)
      << dead->result.message;
  {
    const auto s = sup.stats();
    EXPECT_GE(s.worker_deaths, 1u);
    EXPECT_GE(s.quarantined, 1u);
    EXPECT_EQ(s.quarantine_trips, 1u);
    EXPECT_EQ(s.completed, 0u);
  }

  // While the breaker is open, the same (tenant, shape) is rejected at
  // admission with a typed reason and a retry hint.
  const auto rejected = sup.submit(spec);
  ASSERT_FALSE(rejected.ok());
  std::string reason;
  std::int64_t ms = 0;
  ASSERT_TRUE(service::parse_rejection(rejected.status().message(), &reason, &ms))
      << rejected.status().message();
  EXPECT_EQ(reason, "quarantined");
  EXPECT_GE(ms, 1);

  // After the cooldown a half-open probe is admitted; the kill fault is
  // one-shot, so the probe completes bit-exact and closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(2'300));
  const auto probe = sup.submit(spec);
  ASSERT_TRUE(probe.ok()) << probe.status().to_string();
  const auto done = sup.wait(probe.value(), 60'000);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone) << done->result.message;
  EXPECT_EQ(done->result.crc, want);
  EXPECT_EQ(done->result.steps_done, spec.steps);
}

}  // namespace
}  // namespace s35
