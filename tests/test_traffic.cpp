#include <gtest/gtest.h>

#include "memsim/traffic.h"

namespace s35::memsim {
namespace {

// Paper-scale LLC but small grids so the replay is fast; grids are chosen
// large enough that a full grid does NOT fit in the cache (the interesting
// regime).
TraceConfig stencil_cfg(long n, int steps) {
  TraceConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = n;
  cfg.steps = steps;
  cfg.elem_bytes = 4;
  cfg.radius = 1;
  cfg.cache.size_bytes = 1u << 20;  // 1 MB "LLC" scaled to the small grid
  cfg.cache.ways = 16;
  return cfg;
}

// Naive Jacobi on a grid much bigger than cache moves ~(read + write-alloc
// + write-back) = 12 B per SP point per step.
TEST(TrafficStencil, NaiveIsStreamBound) {
  auto cfg = stencil_cfg(96, 2);  // 96^3 * 4 B * 2 grids = 7 MB >> 1 MB
  const auto rep = trace_stencil(Scheme::kNaive, cfg);
  EXPECT_NEAR(rep.bytes_per_update(), 12.0, 1.5);
}

// Streaming stores eliminate the write-allocate fetch: ~8 B per update.
TEST(TrafficStencil, StreamingStoresSaveWriteAllocate) {
  auto cfg = stencil_cfg(96, 2);
  cfg.streaming_stores = true;
  const auto rep = trace_stencil(Scheme::kNaive, cfg);
  EXPECT_NEAR(rep.bytes_per_update(), 8.0, 1.0);
  auto cfg2 = stencil_cfg(96, 2);
  const auto rep2 = trace_stencil(Scheme::kNaive, cfg2);
  EXPECT_LT(rep.bytes_per_update(), rep2.bytes_per_update());
}

// The headline claim: 3.5D traffic ~= naive / (dim_t / kappa).
TEST(TrafficStencil, Blocked35dCutsTrafficByDimT) {
  auto base = stencil_cfg(96, 4);
  base.streaming_stores = true;
  const double naive = trace_stencil(Scheme::kNaive, base).bytes_per_update();

  auto blocked = base;
  blocked.dim_t = 2;
  blocked.dim_x = blocked.dim_y = 64;
  const double b35 = trace_stencil(Scheme::kBlocked35D, blocked).bytes_per_update();

  const double reduction = naive / b35;
  // kappa(1,2,64,64) ~= 1.14 -> expect ~2/1.14 ~= 1.75x.
  EXPECT_GT(reduction, 1.5);
  EXPECT_LT(reduction, 2.1);

  auto blocked3 = base;
  blocked3.dim_t = 4;
  blocked3.dim_x = blocked3.dim_y = 64;
  const double b35t4 = trace_stencil(Scheme::kBlocked35D, blocked3).bytes_per_update();
  EXPECT_GT(naive / b35t4, 2.3);  // deeper temporal blocking cuts more
  EXPECT_LT(b35t4, b35);
}

// 2.5D spatial-only matches naive traffic on a cached machine (no temporal
// reuse to exploit; Section VII-A "spatial blocking in itself did not
// obtain much benefit").
TEST(TrafficStencil, Spatial25dAlone) {
  auto cfg = stencil_cfg(96, 2);
  cfg.streaming_stores = true;
  const double naive = trace_stencil(Scheme::kNaive, cfg).bytes_per_update();
  auto cfg2 = cfg;
  cfg2.dim_x = cfg2.dim_y = 64;
  const double sp = trace_stencil(Scheme::kSpatial25D, cfg2).bytes_per_update();
  EXPECT_NEAR(sp, naive, 0.3 * naive);
}

// Temporal-only blocking works when the whole XY slab set fits (small
// grid), fails to cut traffic when it does not (Figure 4(a) story).
TEST(TrafficStencil, TemporalOnlyNeedsFittingSlabs) {
  auto small = stencil_cfg(48, 4);  // 48^2 plane set fits the 1 MB cache
  small.streaming_stores = true;
  small.dim_t = 2;
  const double naive_small = trace_stencil(Scheme::kNaive, small).bytes_per_update();
  const double temp_small =
      trace_stencil(Scheme::kTemporalOnly, small).bytes_per_update();
  EXPECT_LT(temp_small, 0.75 * naive_small);

  // 224^2 XY planes: the (2R+2) x dim_t plane buffer alone exceeds the
  // 1 MB cache, so temporal reuse dies (the paper's large-grid failure).
  auto big = stencil_cfg(224, 2);
  big.streaming_stores = true;
  big.dim_t = 2;
  const double naive_big = trace_stencil(Scheme::kNaive, big).bytes_per_update();
  const double temp_big = trace_stencil(Scheme::kTemporalOnly, big).bytes_per_update();
  EXPECT_GT(temp_big, 0.9 * naive_big);
}

// 4D blocking pays ghost traffic in all three dimensions: more external
// bytes than 3.5D at the same dim_t and comparable buffer budget.
TEST(TrafficStencil, Blocked4dWorseThan35d) {
  auto cfg = stencil_cfg(96, 4);
  cfg.streaming_stores = true;
  cfg.dim_t = 2;
  cfg.dim_x = cfg.dim_y = 64;
  const double b35 = trace_stencil(Scheme::kBlocked35D, cfg).bytes_per_update();
  auto cfg4 = cfg;
  cfg4.dim_x = cfg4.dim_y = cfg4.dim_z = 16;  // similar buffer bytes
  const double b4 = trace_stencil(Scheme::kBlocked4D, cfg4).bytes_per_update();
  EXPECT_GT(b4, b35);
}

// ------------------------------------------------------------------- LBM --

TraceConfig lbm_cfg(long n, int steps) {
  TraceConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = n;
  cfg.steps = steps;
  cfg.elem_bytes = 4;
  cfg.radius = 1;
  cfg.cache.size_bytes = 1u << 20;
  cfg.cache.ways = 16;
  return cfg;
}

// Naive LBM streams ~19 reads + 19 write-allocs + 19 write-backs + flag
// ~= 229 B/cell SP (matches the paper's 228 B analysis).
TEST(TrafficLbm, NaiveMatchesPaperByteCount) {
  // nx = 64 keeps rows exact cache-line multiples; with nx = 40 the rows
  // span partial lines and the measured bytes rise above the analytic 229
  // (the effect of the paper's footnote 1).
  const auto rep = trace_lbm(Scheme::kNaive, lbm_cfg(64, 2));
  EXPECT_NEAR(rep.bytes_per_update(), 229.0, 12.0);
  const auto padded = trace_lbm(Scheme::kNaive, lbm_cfg(40, 2));
  EXPECT_GT(padded.bytes_per_update(), rep.bytes_per_update());
}

// 3.5D with dim_t = 3 cuts LBM traffic by ~ dim_t / kappa.
TEST(TrafficLbm, Blocked35dCutsTraffic) {
  auto cfg = lbm_cfg(48, 6);
  // The blocking buffer (19 arrays x 4 slots x 3 instances x 24^2) is
  // ~0.7 MB; the cache must hold it comfortably, as eq. 1 requires.
  cfg.cache.size_bytes = 2u << 20;
  const double naive = trace_lbm(Scheme::kNaive, cfg).bytes_per_update();
  auto blocked = cfg;
  blocked.dim_t = 3;
  blocked.dim_x = blocked.dim_y = 24;
  const double b35 = trace_lbm(Scheme::kBlocked35D, blocked).bytes_per_update();
  // kappa(1,3,24,24) = (1-6/24)^-2 = 1.78 -> reduction ~ 3/1.78 = 1.7.
  EXPECT_GT(naive / b35, 1.35);
  EXPECT_LT(naive / b35, 2.2);
}

// Temporal-only helps only when the whole working set fits (64^3 bars of
// Figure 4(a) at real scale; scaled down here).
TEST(TrafficLbm, TemporalOnlySmallVsLarge) {
  // Small case mirrors the paper's 64^3 regime: the lattice itself exceeds
  // the cache (no naive reuse) but the temporal plane buffer fits.
  auto small = lbm_cfg(32, 4);
  small.dim_t = 2;
  small.cache.size_bytes = 2u << 20;  // buffer 655 KB << 2 MB << lattice 5 MB
  const double naive_small = trace_lbm(Scheme::kNaive, small).bytes_per_update();
  const double temp_small = trace_lbm(Scheme::kTemporalOnly, small).bytes_per_update();
  EXPECT_LT(temp_small, 0.8 * naive_small);

  auto big = lbm_cfg(64, 4);
  big.dim_t = 2;
  const double naive_big = trace_lbm(Scheme::kNaive, big).bytes_per_update();
  const double temp_big = trace_lbm(Scheme::kTemporalOnly, big).bytes_per_update();
  EXPECT_GT(temp_big, 0.9 * naive_big);
}

TEST(TrafficLbm, TlbLargePagesReduceMisses) {
  auto cfg = lbm_cfg(32, 1);
  const double m4k = lbm_tlb_misses_per_update(cfg, {64, 4096});
  const double m2m = lbm_tlb_misses_per_update(cfg, {32, 2u << 20});
  EXPECT_LT(m2m, m4k * 0.25);
}

// Hierarchy-backed replay: external traffic matches the single-level
// replay with the same LLC, and inner levels show real reuse.
TEST(TrafficStencil, HierarchyMatchesSingleLevelExternally) {
  auto cfg = stencil_cfg(96, 2);
  cfg.streaming_stores = true;
  cfg.dim_t = 2;
  cfg.dim_x = cfg.dim_y = 64;
  const double single = trace_stencil(Scheme::kBlocked35D, cfg).bytes_per_update();

  HierarchyConfig h;
  h.levels.push_back({16u << 10, 8, 64});
  h.levels.push_back({64u << 10, 8, 64});
  h.levels.push_back({1u << 20, 16, 64});
  auto cfg2 = cfg;
  cfg2.hierarchy = &h;
  const auto rep = trace_stencil(Scheme::kBlocked35D, cfg2);
  ASSERT_EQ(rep.levels.size(), 3u);
  EXPECT_NEAR(rep.bytes_per_update(), single, 0.15 * single);
  // The LLC must be absorbing the ring-buffer reuse (the replay works at
  // row-range granularity, so L1-level reuse is under-represented; the
  // LLC hit rate is the meaningful signal).
  EXPECT_GT(1.0 - rep.levels[2].miss_rate(), 0.7);
}

TEST(Scheme, NamesStable) {
  EXPECT_STREQ(to_string(Scheme::kBlocked35D), "3.5d");
  EXPECT_STREQ(to_string(Scheme::kNaive), "naive");
}

}  // namespace
}  // namespace s35::memsim
