#include <gtest/gtest.h>

#include <cmath>

#include "lbm/collide.h"
#include "lbm/lattice.h"

namespace s35::lbm {
namespace {

TEST(Directions, OppositesAreNegated) {
  for (int i = 0; i < kQ; ++i) {
    const int o = kOpposite[i];
    EXPECT_EQ(kCx[o], -kCx[i]);
    EXPECT_EQ(kCy[o], -kCy[i]);
    EXPECT_EQ(kCz[o], -kCz[i]);
    EXPECT_EQ(kOpposite[o], i);
  }
}

TEST(Directions, D3Q19VelocitySetStructure) {
  int rest = 0, axis = 0, diag = 0;
  for (int i = 0; i < kQ; ++i) {
    const int norm2 = kCx[i] * kCx[i] + kCy[i] * kCy[i] + kCz[i] * kCz[i];
    if (norm2 == 0) ++rest;
    if (norm2 == 1) ++axis;
    if (norm2 == 2) ++diag;
    EXPECT_LE(norm2, 2);  // D3Q19 has no corner directions
  }
  EXPECT_EQ(rest, 1);
  EXPECT_EQ(axis, 6);
  EXPECT_EQ(diag, 12);
}

TEST(Weights, LatticeMomentIdentities) {
  // sum w = 1; sum w c = 0; sum w c c = cs^2 I with cs^2 = 1/3.
  double sw = 0, swx = 0, swy = 0, swz = 0;
  double sxx = 0, syy = 0, szz = 0, sxy = 0, sxz = 0, syz = 0;
  for (int i = 0; i < kQ; ++i) {
    const double w = weight<double>(i);
    sw += w;
    swx += w * kCx[i];
    swy += w * kCy[i];
    swz += w * kCz[i];
    sxx += w * kCx[i] * kCx[i];
    syy += w * kCy[i] * kCy[i];
    szz += w * kCz[i] * kCz[i];
    sxy += w * kCx[i] * kCy[i];
    sxz += w * kCx[i] * kCz[i];
    syz += w * kCy[i] * kCz[i];
  }
  EXPECT_NEAR(sw, 1.0, 1e-14);
  EXPECT_NEAR(swx, 0.0, 1e-14);
  EXPECT_NEAR(swy, 0.0, 1e-14);
  EXPECT_NEAR(swz, 0.0, 1e-14);
  EXPECT_NEAR(sxx, 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(syy, 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(szz, 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(sxy, 0.0, 1e-14);
  EXPECT_NEAR(sxz, 0.0, 1e-14);
  EXPECT_NEAR(syz, 0.0, 1e-14);
}

TEST(BgkCollide, EquilibriumIsFixedPoint) {
  using SV = simd::Vec<double, simd::ScalarTag>;
  SV fin[kQ], fout[kQ];
  for (int i = 0; i < kQ; ++i) fin[i] = SV{weight<double>(i)};  // rho=1, u=0
  bgk_collide<SV, double>(fin, fout, 1.3);
  for (int i = 0; i < kQ; ++i) EXPECT_NEAR(fout[i].v, fin[i].v, 1e-14);
}

TEST(BgkCollide, ConservesMassAndMomentum) {
  using SV = simd::Vec<double, simd::ScalarTag>;
  SV fin[kQ], fout[kQ];
  // Arbitrary positive populations.
  for (int i = 0; i < kQ; ++i) fin[i] = SV{0.01 + 0.003 * i};
  bgk_collide<SV, double>(fin, fout, 0.9);
  double rho_in = 0, rho_out = 0, mx_in = 0, mx_out = 0, my_in = 0, my_out = 0,
         mz_in = 0, mz_out = 0;
  for (int i = 0; i < kQ; ++i) {
    rho_in += fin[i].v;
    rho_out += fout[i].v;
    mx_in += kCx[i] * fin[i].v;
    mx_out += kCx[i] * fout[i].v;
    my_in += kCy[i] * fin[i].v;
    my_out += kCy[i] * fout[i].v;
    mz_in += kCz[i] * fin[i].v;
    mz_out += kCz[i] * fout[i].v;
  }
  EXPECT_NEAR(rho_out, rho_in, 1e-13);
  EXPECT_NEAR(mx_out, mx_in, 1e-13);
  EXPECT_NEAR(my_out, my_in, 1e-13);
  EXPECT_NEAR(mz_out, mz_in, 1e-13);
}

TEST(BgkCollide, VectorMatchesScalarBitExact) {
  using SV = simd::Vec<float, simd::ScalarTag>;
  using V = simd::Vec<float, simd::DefaultTag>;
  constexpr int W = V::width;

  float in[kQ][W];
  for (int i = 0; i < kQ; ++i)
    for (int l = 0; l < W; ++l) in[i][l] = 0.02f + 0.001f * static_cast<float>(i * W + l);

  V vin[kQ], vout[kQ];
  for (int i = 0; i < kQ; ++i) vin[i] = V::loadu(in[i]);
  bgk_collide<V, float>(vin, vout, 1.1f);

  for (int l = 0; l < W; ++l) {
    SV sin[kQ], sout[kQ];
    for (int i = 0; i < kQ; ++i) sin[i] = SV{in[i][l]};
    bgk_collide<SV, float>(sin, sout, 1.1f);
    float lanes[W];
    for (int i = 0; i < kQ; ++i) {
      vout[i].storeu(lanes);
      EXPECT_EQ(lanes[l], sout[i].v) << "dir " << i << " lane " << l;
    }
  }
}

TEST(MovingWallCorrections, SignAndMagnitude) {
  const double uw[3] = {0.1, 0.0, 0.0};
  double corr[kQ];
  moving_wall_corrections(uw, corr);
  EXPECT_DOUBLE_EQ(corr[0], 0.0);
  // Direction 1 = (+1,0,0): 6 * (1/18) * 0.1.
  EXPECT_NEAR(corr[1], 6.0 / 18.0 * 0.1, 1e-15);
  EXPECT_NEAR(corr[2], -6.0 / 18.0 * 0.1, 1e-15);
  // Diagonals with cx=+1 get 6 * (1/36) * 0.1.
  EXPECT_NEAR(corr[7], 6.0 / 36.0 * 0.1, 1e-15);
}

TEST(Geometry, BoxWallsAndFinalize) {
  Geometry g(8, 8, 8);
  g.set_box_walls();
  g.finalize();
  EXPECT_EQ(g.count(kWall), 8 * 8 * 8 - 6 * 6 * 6);
  EXPECT_EQ(g.count(kFluid), 6 * 6 * 6);
  // Interior rows have pure-fluid spans only where all neighbors are fluid.
  const auto& spans = g.pure_fluid_spans(4, 4);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 2);  // x=1 touches the x=0 wall
  EXPECT_EQ(spans[0].end, 6);
  // Rows adjacent to a wall have no pure-fluid cells.
  EXPECT_TRUE(g.pure_fluid_spans(1, 4).empty());
  EXPECT_TRUE(g.pure_fluid_spans(0, 4).empty());
}

TEST(Geometry, SolidBoxSplitsSpans) {
  Geometry g(16, 8, 8);
  g.set_box_walls();
  g.set_solid_box(7, 9, 3, 6, 3, 6);
  g.finalize();
  const auto& spans = g.pure_fluid_spans(4, 4);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].begin, 2);
  EXPECT_EQ(spans[0].end, 6);   // x=6 touches the box at x=7
  EXPECT_EQ(spans[1].begin, 10);
  EXPECT_EQ(spans[1].end, 14);
}

TEST(Geometry, RejectsEdgeFluid) {
  Geometry g(6, 6, 6);  // all fluid, no walls
  EXPECT_DEATH(g.finalize(), "domain edge");
}

TEST(Lattice, EquilibriumInitMoments) {
  Lattice<double> lat(6, 5, 4);
  lat.init_equilibrium();
  EXPECT_NEAR(lat.density(2, 2, 2), 1.0, 1e-14);
  double u[3];
  lat.velocity(3, 2, 1, u);
  EXPECT_NEAR(u[0], 0.0, 1e-14);
  EXPECT_NEAR(u[1], 0.0, 1e-14);
  EXPECT_NEAR(u[2], 0.0, 1e-14);
}

TEST(LatticePair, SwapExchangesRoles) {
  LatticePair<float> pair(4, 4, 4);
  pair.src().at(0, 1, 1, 1) = 5.0f;
  pair.dst().at(0, 1, 1, 1) = 6.0f;
  pair.swap();
  EXPECT_EQ(pair.src().at(0, 1, 1, 1), 6.0f);
}

}  // namespace
}  // namespace s35::lbm
