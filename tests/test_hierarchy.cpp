#include <gtest/gtest.h>

#include "memsim/hierarchy.h"

namespace s35::memsim {
namespace {

HierarchyConfig tiny_hierarchy() {
  HierarchyConfig h;
  h.levels.push_back({1024, 4, 64});   // L1: 16 lines
  h.levels.push_back({4096, 4, 64});   // L2: 64 lines
  h.levels.push_back({16384, 8, 64});  // L3: 256 lines
  return h;
}

TEST(Hierarchy, ColdMissFillsEveryLevel) {
  Hierarchy h(tiny_hierarchy());
  h.read(0, 64);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(h.level_stats(k).read_misses, 1u) << "level " << k;
  }
  EXPECT_EQ(h.external_bytes(), 64u);
  // Second access hits L1 and never reaches L2/L3.
  h.read(0, 64);
  EXPECT_EQ(h.level_stats(0).read_hits, 1u);
  EXPECT_EQ(h.level_stats(1).read_hits + h.level_stats(1).read_misses, 1u);
  EXPECT_EQ(h.external_bytes(), 64u);
}

TEST(Hierarchy, L1EvictionHitsInL2) {
  Hierarchy h(tiny_hierarchy());
  // Touch 32 lines: L1 (16 lines) thrashes, L2 (64) holds them all.
  for (std::uint64_t a = 0; a < 32 * 64; a += 64) h.read(a, 64);
  // Re-touch: all L1 misses must hit in L2 without external traffic.
  const std::uint64_t ext_before = h.external_bytes();
  for (std::uint64_t a = 0; a < 32 * 64; a += 64) h.read(a, 64);
  EXPECT_EQ(h.external_bytes(), ext_before);
  EXPECT_GT(h.level_stats(1).read_hits, 0u);
}

TEST(Hierarchy, DirtyWritebackCascades) {
  Hierarchy h(tiny_hierarchy());
  h.write(0, 64);
  h.flush();
  // The dirty line must reach memory exactly once (L1 -> L2 -> L3 -> mem),
  // on top of the single 64 B fill.
  EXPECT_EQ(h.external_bytes(), 64u + 64u);
}

TEST(Hierarchy, StreamWriteBypassesAllLevels) {
  Hierarchy h(tiny_hierarchy());
  h.write(0, 64);         // dirty in L1
  h.stream_write(0, 64);  // overwrites: stale copies dropped everywhere
  h.flush();
  // Fill (64) + streamed bytes (64); the stale dirty line must NOT be
  // written back.
  EXPECT_EQ(h.external_bytes(), 128u);
  h.read(0, 64);  // must miss everywhere again
  EXPECT_EQ(h.level_stats(0).read_misses, 1u);
}

TEST(Hierarchy, WorkingSetsSettleInTheRightLevel) {
  Hierarchy h(tiny_hierarchy());
  // 128 lines: beyond L2 (64) but within L3 (256).
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t a = 0; a < 128 * 64; a += 64) h.read(a, 64);
  // After the first pass, external traffic stops growing.
  const std::uint64_t ext = h.external_bytes();
  EXPECT_EQ(ext, 128u * 64u);
  EXPECT_GT(h.level_stats(2).read_hits, 0u);  // L3 serves the re-passes
}

TEST(Hierarchy, CoreI7PresetShape) {
  const auto cfg = HierarchyConfig::core_i7();
  ASSERT_EQ(cfg.levels.size(), 3u);
  EXPECT_EQ(cfg.levels[0].size_bytes, 32u << 10);
  EXPECT_EQ(cfg.levels[1].size_bytes, 256u << 10);
  EXPECT_EQ(cfg.levels[2].size_bytes, 8u << 20);
  Hierarchy h(cfg);  // constructible
  h.read(12345, 4);
  EXPECT_EQ(h.external_bytes(), 64u);
}

}  // namespace
}  // namespace s35::memsim
