// Online-integrity layer: every injected SDC kind (resident-plane bit
// flip, wrong-result kernel row, stalled thread) must be detected,
// attributed to the right plane/row/tid, and recovered bit-exact against
// a fault-free run — and a fault-free audited run must stay silent and
// bit-identical to an unaudited one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "integrity/integrity.h"
#include "integrity/watchdog.h"
#include "lbm/sweeps.h"
#include "stencil/distributed.h"
#include "stencil/sweeps.h"

namespace s35 {
namespace {

using stencil::SweepConfig;
using stencil::Variant;

std::string tmp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

// Fault-free reference result for the given config (audits off).
template <typename S, typename T>
grid::Grid3<T> stencil_reference(const S& s, long nx, long ny, long nz, int steps,
                                 SweepConfig cfg, core::Engine35& engine,
                                 unsigned seed = 4242) {
  grid::GridPair<T> pair(nx, ny, nz);
  pair.src().fill_random(seed, T(-1), T(1));
  cfg.integrity = {};
  run_sweep(Variant::kBlocked35D, s, pair, steps, cfg, engine);
  return pair.src();
}

template <typename T>
long lattice_mismatches(const lbm::Lattice<T>& a, const lbm::Lattice<T>& b) {
  long bad = 0;
  for (int i = 0; i < lbm::kQ; ++i)
    for (long z = 0; z < a.nz(); ++z)
      for (long y = 0; y < a.ny(); ++y)
        for (long x = 0; x < a.nx(); ++x) {
          const T va = a.at(i, x, y, z), vb = b.at(i, x, y, z);
          if (!(va == vb) && !(va != va && vb != vb)) ++bad;
        }
  return bad;
}

template <typename T>
void perturb(lbm::Lattice<T>& lat) {
  lat.init_equilibrium();
  for (long z = 0; z < lat.nz(); ++z)
    for (long y = 0; y < lat.ny(); ++y)
      for (long x = 0; x < lat.nx(); ++x)
        for (int i = 0; i < lbm::kQ; ++i)
          lat.at(i, x, y, z) +=
              T(0.01) * static_cast<T>(std::sin(0.3 * x + 0.5 * y + 0.7 * z + i));
}

// ---- sampler / comparator units ----

TEST(AuditSampler, DeterministicAndRateBounded) {
  const std::uint64_t seed = 0xABCDEF;
  // Pure function of its arguments: same site, same answer.
  for (int rep = 0; rep < 3; ++rep)
    EXPECT_EQ(integrity::audit_selects(seed, 7, 1, 13, 5, 0.25),
              integrity::audit_selects(seed, 7, 1, 13, 5, 0.25));
  // Degenerate rates are exact.
  EXPECT_TRUE(integrity::audit_selects(seed, 0, 0, 0, 0, 1.0));
  EXPECT_FALSE(integrity::audit_selects(seed, 0, 0, 0, 0, 0.0));
  // Empirical frequency tracks the rate (law of large numbers, wide band).
  for (double rate : {1.0 / 64.0, 0.25}) {
    long hits = 0;
    const long trials = 200000;
    for (long i = 0; i < trials; ++i)
      if (integrity::audit_selects(seed, static_cast<std::uint64_t>(i % 97), 0,
                                   i % 1021, i / 1021, rate))
        ++hits;
    const double freq = static_cast<double>(hits) / static_cast<double>(trials);
    EXPECT_NEAR(freq, rate, 0.15 * rate) << "rate=" << rate;
  }
  // Different seeds pick different subsets.
  long diff = 0;
  for (long i = 0; i < 1000; ++i)
    if (integrity::audit_selects(1, 0, 0, i, 0, 0.5) !=
        integrity::audit_selects(2, 0, 0, i, 0, 0.5))
      ++diff;
  EXPECT_GT(diff, 0);
}

TEST(AuditSampler, MatchesToleranceContract) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // Without FMA: exact, and both-NaN is the guards' business, not a mismatch.
  EXPECT_TRUE(integrity::audit_matches(1.5f, 1.5f, false));
  EXPECT_FALSE(integrity::audit_matches(1.5f, 1.5000001f, false));
  EXPECT_TRUE(integrity::audit_matches(nan, nan, false));
  EXPECT_FALSE(integrity::audit_matches(nan, 1.0f, false));
  // With FMA: small relative drift tolerated, gross corruption is not.
  EXPECT_TRUE(integrity::audit_matches(1.0f, 1.0f + 1e-6f, true));
  EXPECT_FALSE(integrity::audit_matches(1.0f, 1.1f, true));
  EXPECT_TRUE(integrity::audit_matches(1.0, 1.0 + 1e-12, true));
  EXPECT_FALSE(integrity::audit_matches(1.0, 1.0 + 1e-6, true));
}

// ---- fault-free behavior ----

TEST(Integrity, FaultFreeAuditIsSilentAndBitExact) {
  const long nx = 20, ny = 18, nz = 24;
  const int steps = 6;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(3);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 12;
  const grid::Grid3<float> ref =
      stencil_reference<stencil::Stencil7<float>, float>(s, nx, ny, nz, steps, cfg,
                                                         engine);

  grid::GridPair<float> pair(nx, ny, nz);
  pair.src().fill_random(4242, -1.0f, 1.0f);
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.sentinel_stride = 1;  // every plane, deterministically
  cfg.integrity.options.guard_stride = 1;
  cfg.integrity.options.audit_rate = 1.0;  // audit every row
  cfg.integrity.monitor = &mon;
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, steps, cfg, engine);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(mon.sdc_detected(), 0u);
  EXPECT_EQ(mon.reexecs(), 0u);
  EXPECT_GT(mon.audited_rows(), 0u);
  EXPECT_GT(mon.sentinel_checks(), 0u);
  EXPECT_EQ(grid::count_mismatches(ref, pair.src()), 0);
}

TEST(Integrity, DefaultRateAuditsAStrictSample) {
  const long nx = 16, ny = 16, nz = 20;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;

  std::uint64_t audited[2] = {0, 0};
  int idx = 0;
  for (double rate : {1.0, integrity::kDefaultAuditRate}) {
    grid::GridPair<float> pair(nx, ny, nz);
    pair.src().fill_random(7, -1.0f, 1.0f);
    integrity::IntegrityMonitor mon;
    cfg.integrity.options.enabled = true;
    cfg.integrity.options.audit_rate = rate;
    cfg.integrity.monitor = &mon;
    ASSERT_TRUE(
        run_sweep_verified(Variant::kBlocked35D, s, pair, 4, cfg, engine).ok());
    EXPECT_EQ(mon.sdc_detected(), 0u);
    audited[idx++] = mon.audited_rows();
  }
  // The sampled run audits some rows, but far fewer than rate 1.0.
  EXPECT_GT(audited[1], 0u);
  EXPECT_LT(audited[1] * 8, audited[0]);
}

// ---- injected fault kinds: detect, attribute, recover ----

TEST(Integrity, PlaneFlipDetectedAttributedAndRecovered) {
  const long nx = 20, ny = 18, nz = 24;
  const int steps = 6;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(3);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 12;
  const grid::Grid3<float> ref =
      stencil_reference<stencil::Stencil7<float>, float>(s, nx, ny, nz, steps, cfg,
                                                         engine);

  fault::FaultPlan plan(99);
  plan.flip_pass = 0;
  plan.flip_round = 2;
  grid::GridPair<float> pair(nx, ny, nz);
  pair.src().fill_random(4242, -1.0f, 1.0f);
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.sentinel_stride = 1;  // every plane, deterministically
  cfg.integrity.options.guard_stride = 1;
  cfg.integrity.monitor = &mon;
  cfg.integrity.plan = &plan;
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, steps, cfg, engine);
  ASSERT_TRUE(st.ok()) << st.to_string();

  EXPECT_EQ(plan.counters().plane_flips, 1u);
  ASSERT_GE(mon.sdc_detected(), 1u);
  const integrity::SdcEvent e = mon.events().front();
  EXPECT_EQ(e.kind, integrity::SdcKind::kSentinel);
  EXPECT_EQ(e.pass, 0u);
  // The flip hits the plane loaded on round `flip_round`; the sentinel
  // entry pins exactly that plane.
  EXPECT_EQ(e.z, 2);
  EXPECT_GE(e.slot, 0);
  // One in-memory re-execution heals it (the flip is one-shot).
  EXPECT_EQ(mon.reexecs(), 1u);
  EXPECT_EQ(grid::count_mismatches(ref, pair.src()), 0);
}

TEST(Integrity, PlaneFlipRecoveredInSerializedMode) {
  const long nx = 16, ny = 16, nz = 20;
  const int steps = 4;
  const auto s = stencil::default_stencil7<double>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;
  cfg.serialized = true;
  const grid::Grid3<double> ref =
      stencil_reference<stencil::Stencil7<double>, double>(s, nx, ny, nz, steps,
                                                           cfg, engine);

  fault::FaultPlan plan(5);
  plan.flip_pass = 1;
  plan.flip_round = 3;
  grid::GridPair<double> pair(nx, ny, nz);
  pair.src().fill_random(4242, -1.0, 1.0);
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.sentinel_stride = 1;  // every plane, deterministically
  cfg.integrity.options.guard_stride = 1;
  cfg.integrity.monitor = &mon;
  cfg.integrity.plan = &plan;
  ASSERT_TRUE(
      run_sweep_verified(Variant::kBlocked35D, s, pair, steps, cfg, engine).ok());
  EXPECT_GE(mon.sdc_detected(), 1u);
  EXPECT_EQ(mon.events().front().kind, integrity::SdcKind::kSentinel);
  EXPECT_EQ(grid::count_mismatches(ref, pair.src()), 0);
}

TEST(Integrity, WrongRowDetectedAttributedAndRecovered) {
  const long nx = 20, ny = 18, nz = 24;
  const int steps = 6;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(3);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 12;
  const grid::Grid3<float> ref =
      stencil_reference<stencil::Stencil7<float>, float>(s, nx, ny, nz, steps, cfg,
                                                         engine);

  fault::FaultPlan plan(17);
  plan.wrong_row_pass = 1;
  plan.wrong_row_z = 10;
  plan.wrong_row_y = 12;
  grid::GridPair<float> pair(nx, ny, nz);
  pair.src().fill_random(4242, -1.0f, 1.0f);
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.audit_rate = 1.0;
  cfg.integrity.monitor = &mon;
  cfg.integrity.plan = &plan;
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, steps, cfg, engine);
  ASSERT_TRUE(st.ok()) << st.to_string();

  EXPECT_EQ(plan.counters().wrong_rows, 1u);
  ASSERT_GE(mon.sdc_detected(), 1u);
  const integrity::SdcEvent e = mon.events().front();
  EXPECT_EQ(e.kind, integrity::SdcKind::kAudit);
  EXPECT_EQ(e.pass, 1u);
  EXPECT_EQ(e.z, 10);
  EXPECT_EQ(e.y, 12);
  EXPECT_EQ(mon.reexecs(), 1u);
  EXPECT_EQ(grid::count_mismatches(ref, pair.src()), 0);
}

TEST(Integrity, StalledThreadAttributedWithoutPoisoning) {
  const long nx = 20, ny = 18, nz = 24;
  const int steps = 4;
  const int nthreads = 3;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(nthreads);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;
  const grid::Grid3<float> ref =
      stencil_reference<stencil::Stencil7<float>, float>(s, nx, ny, nz, steps, cfg,
                                                         engine);

  fault::FaultPlan plan(3);
  plan.stall_tid = 1;
  plan.stall_pass = 0;
  plan.stall_ms = 300;
  grid::GridPair<float> pair(nx, ny, nz);
  pair.src().fill_random(4242, -1.0f, 1.0f);
  integrity::IntegrityMonitor mon;
  integrity::Watchdog dog;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.watchdog_ms = 50;
  cfg.integrity.monitor = &mon;
  cfg.integrity.watchdog = &dog;
  cfg.integrity.plan = &plan;
  dog.arm(nthreads, 50, &mon);
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, steps, cfg, engine);
  dog.disarm();
  ASSERT_TRUE(st.ok()) << st.to_string();

  EXPECT_EQ(plan.counters().thread_stalls, 1u);
  ASSERT_GE(mon.stalls(), 1u);
  // The injected straggler must be among the flagged threads, attributed
  // to a working (non-barrier) phase. Under sanitizer slowdown other
  // threads may legitimately trip the 50 ms deadline too, so the check is
  // "tid 1 was flagged", not "only tid 1 was flagged".
  bool attributed = false;
  for (const integrity::SdcEvent& e : mon.events())
    if (e.kind == integrity::SdcKind::kStall && e.tid == 1 &&
        e.phase != telemetry::Phase::kBarrierWait)
      attributed = true;
  EXPECT_TRUE(attributed);
  // Stall reports never poison: no re-execution, result still bit-exact.
  EXPECT_EQ(mon.sdc_detected(), 0u);
  EXPECT_EQ(mon.reexecs(), 0u);
  EXPECT_EQ(grid::count_mismatches(ref, pair.src()), 0);
}

TEST(Integrity, WatchdogHasNoFalsePositives) {
  const long n = 16;
  const int nthreads = 2;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(nthreads);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;
  grid::GridPair<float> pair(n, n, n);
  pair.src().fill_random(11, -1.0f, 1.0f);
  integrity::IntegrityMonitor mon;
  integrity::Watchdog dog;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.watchdog_ms = 2000;  // generous deadline
  cfg.integrity.monitor = &mon;
  cfg.integrity.watchdog = &dog;
  dog.arm(nthreads, 2000, &mon);
  ASSERT_TRUE(
      run_sweep_verified(Variant::kBlocked35D, s, pair, 6, cfg, engine).ok());
  dog.disarm();
  EXPECT_EQ(mon.stalls(), 0u);
  EXPECT_EQ(mon.sdc_detected(), 0u);
}

// ---- recovery ladder: sticky fault escalates to the checkpoint rung ----

TEST(Integrity, StickyWrongRowEscalatesToCheckpointRestoreBitExact) {
  const long nx = 18, ny = 16, nz = 32;
  const int steps = 8, dim_t = 2, ranks = 2;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = dim_t;

  // Fault-free distributed reference.
  grid::Grid3<float> initial(nx, ny, nz);
  initial.fill_random(606, -1.0f, 1.0f);
  grid::Grid3<float> expected(nx, ny, nz);
  {
    stencil::DistributedStencilDriver<stencil::Stencil7<float>, float> clean(
        nx, ny, nz, ranks, dim_t);
    clean.scatter(initial);
    ASSERT_TRUE(clean.run_guarded(s, steps, cfg, engine).ok());
    clean.gather(expected);
  }

  // A sticky wrong row re-fires on every in-memory replay of its pass, so
  // the ladder must exhaust max_reexec and climb to the checkpoint rung.
  const std::string path = tmp_path("integrity_sticky.ckpt");
  fault::FaultPlan plan(31);
  plan.wrong_row_pass = 1;
  plan.wrong_row_z = 6;
  plan.wrong_row_y = 5;
  plan.wrong_row_sticky = true;
  integrity::IntegrityMonitor mon;
  integrity::IntegrityOptions opts;
  opts.enabled = true;
  opts.audit_rate = 1.0;
  opts.max_reexec = 1;
  stencil::DistributedStencilDriver<stencil::Stencil7<float>, float> driver(
      nx, ny, nz, ranks, dim_t);
  driver.scatter(initial);
  driver.set_fault_plan(&plan);
  driver.set_integrity(opts, &mon);
  driver.enable_checkpointing(path, 1);
  const fault::Status st = driver.run_guarded(s, steps, cfg, engine);
  ASSERT_TRUE(st.ok()) << st.to_string();

  EXPECT_GE(driver.stats().sdc_detected, 1u);
  EXPECT_GE(driver.stats().sdc_reexecs, 1u);
  EXPECT_GE(driver.stats().sdc_restores, 1u);
  EXPECT_EQ(mon.checkpoint_restores(), driver.stats().sdc_restores);
  grid::Grid3<float> gathered(nx, ny, nz);
  driver.gather(gathered);
  EXPECT_EQ(grid::count_mismatches(expected, gathered), 0);
  std::remove(path.c_str());
}

TEST(Integrity, StickyFaultWithoutCheckpointSurfacesSdcStatus) {
  const long n = 16;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;
  fault::FaultPlan plan(8);
  plan.wrong_row_pass = 0;
  plan.wrong_row_z = 7;
  plan.wrong_row_y = 6;
  plan.wrong_row_sticky = true;
  grid::GridPair<float> pair(n, n, n);
  pair.src().fill_random(1, -1.0f, 1.0f);
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.audit_rate = 1.0;
  cfg.integrity.options.max_reexec = 1;
  cfg.integrity.monitor = &mon;
  cfg.integrity.plan = &plan;
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, 4, cfg, engine);
  EXPECT_EQ(st.code(), fault::ErrorCode::kSdcDetected);
  EXPECT_EQ(mon.reexecs(), 1u);  // budget spent before giving up
}

// ---- NaN/Inf guard localization fuzz ----

TEST(Integrity, NanGuardLocalizes7Point) {
  const long nx = 16, ny = 14, nz = 20;
  const auto s = stencil::default_stencil7<float>();
  core::Engine35 engine(1);  // deterministic event order
  for (long planted_z : {3L, 9L, 14L}) {
    SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = 8;
    grid::GridPair<float> pair(nx, ny, nz);
    pair.src().fill_random(2026, -1.0f, 1.0f);
    pair.src().row(ny / 2, planted_z)[nx / 2] =
        std::numeric_limits<float>::quiet_NaN();
    integrity::IntegrityMonitor mon;
    cfg.integrity.options.enabled = true;
    cfg.integrity.options.max_reexec = 0;  // poisoned input can't replay clean
    cfg.integrity.options.guard_stride = 1;  // exact plane attribution
    cfg.integrity.monitor = &mon;
    const fault::Status st =
        run_sweep_verified(Variant::kBlocked35D, s, pair, 4, cfg, engine);
    EXPECT_EQ(st.code(), fault::ErrorCode::kSdcDetected) << "z=" << planted_z;
    ASSERT_GE(mon.sdc_detected(), 1u);
    const integrity::SdcEvent e = mon.events().front();
    EXPECT_EQ(e.kind, integrity::SdcKind::kGuard);
    // First detection is the *load* of the poisoned plane, not a downstream
    // store: the guard localizes to where the bad data entered.
    EXPECT_EQ(e.z, planted_z);
    EXPECT_NE(e.detail.find("load"), std::string::npos) << e.detail;
  }
}

TEST(Integrity, NanGuardLocalizes27Point) {
  const long nx = 16, ny = 14, nz = 18;
  const auto s = stencil::default_stencil27<float>();
  core::Engine35 engine(1);
  const long planted_z = 7;
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;
  grid::GridPair<float> pair(nx, ny, nz);
  pair.src().fill_random(31, -1.0f, 1.0f);
  pair.src().row(5, planted_z)[6] = -std::numeric_limits<float>::infinity();
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.max_reexec = 0;
  cfg.integrity.options.guard_stride = 1;  // exact plane attribution
  cfg.integrity.monitor = &mon;
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, 4, cfg, engine);
  EXPECT_EQ(st.code(), fault::ErrorCode::kSdcDetected);
  ASSERT_GE(mon.sdc_detected(), 1u);
  EXPECT_EQ(mon.events().front().kind, integrity::SdcKind::kGuard);
  EXPECT_EQ(mon.events().front().z, planted_z);
}

TEST(Integrity, RangeGuardCatchesImplausibleValues) {
  const long n = 14;
  const auto s = stencil::default_stencil7<double>();
  core::Engine35 engine(1);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 8;
  grid::GridPair<double> pair(n, n, n);
  pair.src().fill_random(5, -1.0, 1.0);
  pair.src().row(4, 6)[3] = 1e6;  // finite but far outside the band
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.range_lo = -100.0;
  cfg.integrity.options.range_hi = 100.0;
  cfg.integrity.options.max_reexec = 0;
  cfg.integrity.options.guard_stride = 1;  // exact plane attribution
  cfg.integrity.monitor = &mon;
  const fault::Status st =
      run_sweep_verified(Variant::kBlocked35D, s, pair, 2, cfg, engine);
  EXPECT_EQ(st.code(), fault::ErrorCode::kSdcDetected);
  ASSERT_GE(mon.sdc_detected(), 1u);
  EXPECT_EQ(mon.events().front().kind, integrity::SdcKind::kGuard);
  EXPECT_EQ(mon.events().front().z, 6);
}

// ---- LBM coverage ----

TEST(IntegrityLbm, FaultFreeAuditIsSilentAndBitExact) {
  const long nx = 16, ny = 14, nz = 18;
  const int steps = 6;
  lbm::Geometry geom(nx, ny, nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 1.2f;
  prm.u_wall[0] = 0.05f;
  core::Engine35 engine(2);
  lbm::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = 8;

  lbm::LatticePair<float> ref(nx, ny, nz);
  perturb(ref.src());
  run_lbm(lbm::Variant::kBlocked35D, geom, prm, ref, steps, cfg, engine);

  lbm::LatticePair<float> pair(nx, ny, nz);
  perturb(pair.src());
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.sentinel_stride = 1;  // every plane, deterministically
  cfg.integrity.options.guard_stride = 1;
  cfg.integrity.options.audit_rate = 1.0;
  cfg.integrity.monitor = &mon;
  const fault::Status st =
      run_lbm_verified(lbm::Variant::kBlocked35D, geom, prm, pair, steps, cfg,
                       engine);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(mon.sdc_detected(), 0u);
  EXPECT_GT(mon.audited_rows(), 0u);
  EXPECT_GT(mon.sentinel_checks(), 0u);
  EXPECT_EQ(lattice_mismatches(ref.src(), pair.src()), 0);
}

TEST(IntegrityLbm, WrongRowDetectedAndRecovered) {
  const long nx = 16, ny = 14, nz = 18;
  const int steps = 6;
  lbm::Geometry geom(nx, ny, nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 1.2f;
  prm.u_wall[0] = 0.05f;
  core::Engine35 engine(2);
  lbm::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = 8;

  lbm::LatticePair<float> ref(nx, ny, nz);
  perturb(ref.src());
  run_lbm(lbm::Variant::kBlocked35D, geom, prm, ref, steps, cfg, engine);

  fault::FaultPlan plan(12);
  plan.wrong_row_pass = 1;
  plan.wrong_row_z = 8;
  plan.wrong_row_y = 6;
  lbm::LatticePair<float> pair(nx, ny, nz);
  perturb(pair.src());
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.audit_rate = 1.0;
  cfg.integrity.monitor = &mon;
  cfg.integrity.plan = &plan;
  const fault::Status st =
      run_lbm_verified(lbm::Variant::kBlocked35D, geom, prm, pair, steps, cfg,
                       engine);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(plan.counters().wrong_rows, 1u);
  ASSERT_GE(mon.sdc_detected(), 1u);
  const integrity::SdcEvent e = mon.events().front();
  EXPECT_EQ(e.kind, integrity::SdcKind::kAudit);
  EXPECT_EQ(e.z, 8);
  EXPECT_EQ(e.y, 6);
  EXPECT_EQ(mon.reexecs(), 1u);
  EXPECT_EQ(lattice_mismatches(ref.src(), pair.src()), 0);
}

TEST(IntegrityLbm, PlaneFlipDetectedAndRecovered) {
  const long nx = 16, ny = 14, nz = 18;
  const int steps = 6;
  lbm::Geometry geom(nx, ny, nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 1.1f;
  core::Engine35 engine(2);
  lbm::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = 8;

  lbm::LatticePair<float> ref(nx, ny, nz);
  perturb(ref.src());
  run_lbm(lbm::Variant::kBlocked35D, geom, prm, ref, steps, cfg, engine);

  fault::FaultPlan plan(21);
  plan.flip_pass = 0;
  plan.flip_round = 3;
  lbm::LatticePair<float> pair(nx, ny, nz);
  perturb(pair.src());
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.sentinel_stride = 1;  // every plane, deterministically
  cfg.integrity.options.guard_stride = 1;
  cfg.integrity.monitor = &mon;
  cfg.integrity.plan = &plan;
  const fault::Status st =
      run_lbm_verified(lbm::Variant::kBlocked35D, geom, prm, pair, steps, cfg,
                       engine);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(plan.counters().plane_flips, 1u);
  ASSERT_GE(mon.sdc_detected(), 1u);
  EXPECT_EQ(mon.events().front().kind, integrity::SdcKind::kSentinel);
  EXPECT_EQ(mon.reexecs(), 1u);
  EXPECT_EQ(lattice_mismatches(ref.src(), pair.src()), 0);
}

TEST(IntegrityLbm, NanGuardLocalizesToPlantedPlane) {
  const long nx = 16, ny = 14, nz = 18;
  lbm::Geometry geom(nx, ny, nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 1.2f;
  core::Engine35 engine(1);
  const long planted_z = 6;
  lbm::SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = 8;
  lbm::LatticePair<float> pair(nx, ny, nz);
  perturb(pair.src());
  pair.src().at(0, nx / 2, ny / 2, planted_z) =
      std::numeric_limits<float>::quiet_NaN();
  integrity::IntegrityMonitor mon;
  cfg.integrity.options.enabled = true;
  cfg.integrity.options.max_reexec = 0;
  cfg.integrity.options.guard_stride = 1;  // exact plane attribution
  cfg.integrity.monitor = &mon;
  const fault::Status st = run_lbm_verified(lbm::Variant::kBlocked35D, geom, prm,
                                            pair, 4, cfg, engine);
  EXPECT_EQ(st.code(), fault::ErrorCode::kSdcDetected);
  ASSERT_GE(mon.sdc_detected(), 1u);
  const integrity::SdcEvent e = mon.events().front();
  EXPECT_EQ(e.kind, integrity::SdcKind::kGuard);
  EXPECT_EQ(e.z, planted_z);
}

}  // namespace
}  // namespace s35
