#include <gtest/gtest.h>

#include <cmath>

#include "core/autotuner.h"
#include "core/planner.h"
#include "memsim/traffic.h"

namespace s35::core {
namespace {

TEST(MakeCandidates, FeasibleAndCovering) {
  const auto cands = make_candidates(8, 128, 4, 1);
  ASSERT_FALSE(cands.empty());
  bool has_t1 = false, has_t4 = false, has_small = false, has_big = false;
  for (const auto& c : cands) {
    EXPECT_GT(c.dim_x, 2L * c.dim_t);  // feasibility filter
    EXPECT_EQ(c.dim_x, c.dim_y);
    has_t1 |= c.dim_t == 1;
    has_t4 |= c.dim_t == 4;
    has_small |= c.dim_x == 8;
    has_big |= c.dim_x == 128;
  }
  EXPECT_TRUE(has_t1 && has_t4 && has_small && has_big);
}

TEST(MakeCandidates, HigherRadiusPrunesMore) {
  const auto r1 = make_candidates(8, 64, 4, 1);
  const auto r3 = make_candidates(8, 64, 4, 3);
  EXPECT_GT(r1.size(), r3.size());
}

TEST(Autotune, FindsMinimumOfKnownFunction) {
  const auto cands = make_candidates(8, 256, 3, 1);
  // Synthetic bowl with minimum at (64, dim_t = 2).
  const auto cost = [](const TuneCandidate& c) {
    const double dx = std::log2(static_cast<double>(c.dim_x)) - 6.0;
    const double dt = c.dim_t - 2.0;
    return dx * dx + dt * dt;
  };
  const auto result = autotune(cands, cost);
  EXPECT_EQ(result.best.dim_x, 64);
  EXPECT_EQ(result.best.dim_t, 2);
  EXPECT_EQ(result.samples.size(), cands.size());
}

TEST(Autotune, SkipsNonFiniteCosts) {
  const auto cands = make_candidates(8, 32, 2, 1);
  const auto cost = [](const TuneCandidate& c) {
    if (c.dim_t == 1) return std::numeric_limits<double>::infinity();
    return static_cast<double>(c.dim_x);
  };
  const auto result = autotune(cands, cost);
  EXPECT_EQ(result.best.dim_t, 2);
  EXPECT_EQ(result.best.dim_x, 8);
}

// The headline property: tuning the *simulated external traffic* (a
// deterministic, machine-independent objective) picks a configuration
// whose traffic is within a few percent of the planner's analytic choice —
// the paper's implicit claim that eqs. 1-4 replace Datta-style search.
TEST(Autotune, TrafficObjectiveAgreesWithPlanner) {
  memsim::TraceConfig base;
  base.nx = base.ny = base.nz = 96;
  base.steps = 4;
  base.elem_bytes = 4;
  base.radius = 1;
  base.streaming_stores = true;
  base.cache.size_bytes = 1u << 20;  // scaled LLC

  const auto traffic = [&](const TuneCandidate& c) {
    // Capacity constraint (eq. 1): skip candidates whose buffer exceeds
    // half the cache, as the planner's formulation does.
    const double buffer = 4.0 * c.dim_t * c.dim_x * c.dim_y * base.elem_bytes;
    if (buffer > 0.5 * static_cast<double>(base.cache.size_bytes))
      return std::numeric_limits<double>::infinity();
    auto cfg = base;
    cfg.dim_x = c.dim_x;
    cfg.dim_y = c.dim_y;
    cfg.dim_t = c.dim_t;
    return memsim::trace_stencil(memsim::Scheme::kBlocked35D, cfg).bytes_per_update();
  };

  const auto result = autotune(make_candidates(16, 96, 4, 1), traffic);

  // Planner choice under the same budget: C = 512 KB, E = 4.
  machine::Descriptor m = machine::core_i7();
  m.blocking_capacity_bytes = 512u << 10;
  auto plan = core::plan(m, machine::seven_point(), machine::Precision::kSingle,
                         {.round_multiple = 8, .force_dim_t = result.best.dim_t});
  TuneCandidate planned{std::min(plan.dim_x, base.nx), std::min(plan.dim_y, base.ny),
                        plan.dim_t};
  const double planned_cost = traffic(planned);

  // The analytic choice must be near-optimal (within 10% of the best
  // sampled traffic).
  EXPECT_LE(planned_cost, 1.10 * result.best_cost)
      << "planner " << planned.dim_x << "/" << planned.dim_t << " vs tuned "
      << result.best.dim_x << "/" << result.best.dim_t;
  // And deeper temporal blocking must be what the tuner discovered.
  EXPECT_GE(result.best.dim_t, 2);
}

}  // namespace
}  // namespace s35::core
