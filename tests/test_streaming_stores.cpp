#include <gtest/gtest.h>

#include "stencil/sweeps.h"

namespace s35::stencil {
namespace {

// Streaming stores change only the store instruction, never the values:
// the 3.5D sweep with streaming output must be bit-identical to the normal
// one for every variant/precision/alignment combination.
class StreamingP : public ::testing::TestWithParam<std::tuple<long, int, int>> {};

TEST_P(StreamingP, BitIdenticalToRegularStores) {
  const auto [n, dim_t, threads] = GetParam();
  const auto stencil = default_stencil7<float>();
  core::Engine35 engine(threads);

  SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = std::min<long>(n, 24);

  grid::GridPair<float> regular(n, n, n);
  regular.src().fill_random(66, -1.0f, 1.0f);
  run_sweep(Variant::kBlocked35D, stencil, regular, 5, cfg, engine);

  cfg.streaming_stores = true;
  grid::GridPair<float> streamed(n, n, n);
  streamed.src().fill_random(66, -1.0f, 1.0f);
  run_sweep(Variant::kBlocked35D, stencil, streamed, 5, cfg, engine);

  EXPECT_EQ(grid::count_mismatches(regular.src(), streamed.src()), 0);
}

// Odd grid sizes exercise the unaligned head/tail paths of
// update_row_stream.
INSTANTIATE_TEST_SUITE_P(Sweep, StreamingP,
                         ::testing::Combine(::testing::Values<long>(31, 32, 37, 40),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 4)));

TEST(StreamingStores, DoublePrecision) {
  const long n = 33;
  const auto stencil = default_stencil7<double>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 20;

  grid::GridPair<double> regular(n, n, n), streamed(n, n, n);
  regular.src().fill_random(9);
  streamed.src().fill_random(9);
  run_sweep(Variant::kBlocked35D, stencil, regular, 4, cfg, engine);
  cfg.streaming_stores = true;
  run_sweep(Variant::kBlocked35D, stencil, streamed, 4, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(regular.src(), streamed.src()), 0);
}

// update_row_stream at the row level for every span offset.
TEST(StreamingStores, RowLevelAllOffsets) {
  using V = simd::Vec<float, simd::DefaultTag>;
  const auto stencil = default_stencil7<float>();
  grid::Grid3<float> g(64, 3, 3);
  g.fill_random(4, -1.0f, 1.0f);
  const auto acc = [&](int dz, int dy) -> const float* { return g.row(1 + dy, 1 + dz); };

  grid::Grid3<float> a(64, 1, 1), b(64, 1, 1);
  for (long x0 = 1; x0 < 14; ++x0) {
    for (long x1 : {40L, 51L, 63L}) {
      a.fill(0.0f);
      b.fill(0.0f);
      update_row<V>(stencil, acc, a.row(0, 0), x0, x1);
      update_row_stream<V>(stencil, acc, b.row(0, 0), x0, x1);
      simd::stream_fence();
      EXPECT_EQ(grid::count_mismatches(a, b), 0) << "span [" << x0 << "," << x1 << ")";
    }
  }
}

}  // namespace
}  // namespace s35::stencil
