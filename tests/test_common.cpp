#include <gtest/gtest.h>

#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace s35 {
namespace {

TEST(AlignedBuffer, AllocatesAligned) {
  AlignedBuffer<float> b(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, FillAndIndex) {
  AlignedBuffer<double> b(17, 2.5);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 2.5);
  b[3] = 7.0;
  EXPECT_EQ(b[3], 7.0);
}

TEST(AlignedBuffer, CopyAndMove) {
  AlignedBuffer<int> a(8);
  for (int i = 0; i < 8; ++i) a[static_cast<std::size_t>(i)] = i * i;
  AlignedBuffer<int> copy(a);
  EXPECT_EQ(copy[7], 49);
  AlignedBuffer<int> moved(std::move(a));
  EXPECT_EQ(moved[7], 49);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): documented state
}

TEST(AlignedBuffer, EmptyIsValid) {
  AlignedBuffer<float> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, LargeAllocationSucceeds) {
  // > 2 MB so the huge-page madvise path runs.
  AlignedBuffer<char> b(3u << 20);
  b.fill(1);
  EXPECT_EQ(b[(3u << 20) - 1], 1);
}

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42), c(43);
  const std::uint64_t va = a.next_u64();
  EXPECT_EQ(va, b.next_u64());
  EXPECT_NE(va, c.next_u64());
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, UniformRange) {
  SplitMix64 r(9);
  for (int i = 0; i < 100; ++i) {
    const double d = r.uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Stats, SummaryOfKnownSamples) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, OddMedianAndEmpty) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", Table::fmt(2.5, 1)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "has \"quote\""});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n\"x,y\",\"has \"\"quote\"\"\"\n");
}

TEST(Env, FallbacksAndParsing) {
  EXPECT_EQ(env_int("S35_TEST_UNSET_VAR", 12), 12);
  ::setenv("S35_TEST_INT", "34", 1);
  EXPECT_EQ(env_int("S35_TEST_INT", 0), 34);
  ::setenv("S35_TEST_FLAG", "yes", 1);
  EXPECT_TRUE(env_flag("S35_TEST_FLAG"));
  ::setenv("S35_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("S35_TEST_FLAG"));
  ::setenv("S35_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("S35_TEST_STR", ""), "hello");
}

}  // namespace
}  // namespace s35
