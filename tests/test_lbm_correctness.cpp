#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "lbm/sweeps.h"

namespace s35::lbm {
namespace {

// Independent scalar reference: plain loops over every cell, no blocking,
// no fast path, same arithmetic as lbm_update_row's scalar branch.
template <typename T>
void reference_steps(const Geometry& geom, const BgkParams<T>& prm, Lattice<T>& lat,
                     int steps) {
  using SV = simd::Vec<T, simd::ScalarTag>;
  T corr[kQ];
  moving_wall_corrections(prm.u_wall, corr);
  T fcorr[kQ];
  body_force_terms(prm.force, fcorr);
  Lattice<T> tmp(lat.nx(), lat.ny(), lat.nz());
  for (int s = 0; s < steps; ++s) {
    for (long z = 0; z < lat.nz(); ++z)
      for (long y = 0; y < lat.ny(); ++y)
        for (long x = 0; x < lat.nx(); ++x) {
          if (geom.at(x, y, z) != kFluid) {
            for (int i = 0; i < kQ; ++i) tmp.at(i, x, y, z) = lat.at(i, x, y, z);
            continue;
          }
          SV fin[kQ], fout[kQ];
          for (int i = 0; i < kQ; ++i) {
            const long xn = x - kCx[i], yn = y - kCy[i], zn = z - kCz[i];
            const CellType nf = geom.at(xn, yn, zn);
            if (nf == kFluid) {
              fin[i] = SV{lat.at(i, xn, yn, zn)};
            } else if (nf == kWall) {
              fin[i] = SV{lat.at(kOpposite[i], x, y, z)};
            } else {
              fin[i] = SV{lat.at(kOpposite[i], x, y, z) + corr[i]};
            }
          }
          bgk_collide<SV, T>(fin, fout, prm.omega);
          for (int i = 0; i < kQ; ++i) tmp.at(i, x, y, z) = fout[i].v + fcorr[i];
        }
    // copy back
    for (int i = 0; i < kQ; ++i)
      for (long z = 0; z < lat.nz(); ++z)
        for (long y = 0; y < lat.ny(); ++y)
          for (long x = 0; x < lat.nx(); ++x) lat.at(i, x, y, z) = tmp.at(i, x, y, z);
  }
}

// Seeds a deterministic non-equilibrium state (positive, smooth-ish).
template <typename T>
void perturb(Lattice<T>& lat) {
  lat.init_equilibrium();
  for (long z = 0; z < lat.nz(); ++z)
    for (long y = 0; y < lat.ny(); ++y)
      for (long x = 0; x < lat.nx(); ++x)
        for (int i = 0; i < kQ; ++i) {
          const double bump =
              0.01 * std::sin(0.5 * x + 0.3 * y + 0.7 * z + 0.1 * i);
          lat.at(i, x, y, z) += static_cast<T>(bump * weight<double>(i));
        }
}

template <typename T>
long count_lattice_mismatches(const Lattice<T>& a, const Lattice<T>& b) {
  long bad = 0;
  for (int i = 0; i < kQ; ++i)
    for (long z = 0; z < a.nz(); ++z)
      for (long y = 0; y < a.ny(); ++y)
        for (long x = 0; x < a.nx(); ++x) {
          const T va = a.at(i, x, y, z);
          const T vb = b.at(i, x, y, z);
          if (std::memcmp(&va, &vb, sizeof(T)) != 0) ++bad;
        }
  return bad;
}

struct Case {
  Variant variant;
  long nx, ny, nz;
  int steps;
  SweepConfig cfg;
  int threads;
  std::string name;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const auto add = [&](Variant v, long n0, long n1, long n2, int steps, SweepConfig cfg,
                       int threads, std::string name) {
    cases.push_back({v, n0, n1, n2, steps, cfg, threads, std::move(name)});
  };
  add(Variant::kNaive, 12, 10, 9, 3, {}, 1, "naive_1t");
  add(Variant::kNaive, 16, 16, 16, 2, {}, 4, "naive_4t");
  add(Variant::kTemporalOnly, 14, 14, 14, 5, {.dim_t = 2}, 2, "temporal_t2");
  add(Variant::kTemporalOnly, 12, 16, 20, 7, {.dim_t = 3}, 3, "temporal_t3");
  add(Variant::kBlocked35D, 24, 24, 16, 4, {.dim_t = 2, .dim_x = 12}, 2, "b35_t2");
  add(Variant::kBlocked35D, 24, 20, 14, 6, {.dim_t = 3, .dim_x = 16, .dim_y = 12}, 4,
      "b35_t3_rect");
  add(Variant::kBlocked35D, 20, 20, 20, 5, {.dim_t = 3, .dim_x = 14}, 1, "b35_partial");
  add(Variant::kBlocked35D, 24, 24, 16, 4,
      {.dim_t = 2, .dim_x = 12, .serialized = true}, 3, "b35_serialized");
  add(Variant::kBlocked4D, 24, 24, 24, 4, {.dim_t = 2, .dim_x = 12}, 2, "b4d_t2");
  add(Variant::kBlocked4D, 20, 18, 16, 3, {.dim_t = 3, .dim_x = 14, .dim_y = 12, .dim_z = 10},
      4, "b4d_rect");
  return cases;
}

class LbmExact : public ::testing::TestWithParam<Case> {};

TEST_P(LbmExact, CavityMatchesReferenceBitExact) {
  const Case& c = GetParam();
  Geometry geom(c.nx, c.ny, c.nz);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();

  BgkParams<float> prm;
  prm.omega = 1.2f;
  prm.u_wall[0] = 0.08f;

  LatticePair<float> pair(c.nx, c.ny, c.nz);
  perturb(pair.src());
  Lattice<float> expected(c.nx, c.ny, c.nz);
  perturb(expected);

  reference_steps(geom, prm, expected, c.steps);
  core::Engine35 engine(c.threads);
  run_lbm(c.variant, geom, prm, pair, c.steps, c.cfg, engine);

  EXPECT_EQ(count_lattice_mismatches(expected, pair.src()), 0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LbmExact, ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

// Same sweep with an obstacle in the flow and double precision.
TEST(LbmExactObstacle, BlockedMatchesReference) {
  const long n = 20;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_solid_box(8, 12, 8, 12, 8, 12);
  geom.finalize();

  BgkParams<double> prm;
  prm.omega = 0.9;

  LatticePair<double> pair(n, n, n);
  perturb(pair.src());
  Lattice<double> expected(n, n, n);
  perturb(expected);

  reference_steps(geom, prm, expected, 5);
  core::Engine35 engine(3);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 12;
  run_lbm(Variant::kBlocked35D, geom, prm, pair, 5, cfg, engine);
  EXPECT_EQ(count_lattice_mismatches(expected, pair.src()), 0);
}

// Mass conservation: BGK + stationary bounce-back conserves total mass.
TEST(LbmPhysics, MassConservedWithStationaryWalls) {
  const long n = 16;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.finalize();
  BgkParams<double> prm;
  prm.omega = 1.4;

  LatticePair<double> pair(n, n, n);
  perturb(pair.src());
  const double mass0 = total_fluid_mass(pair.src(), geom);

  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 12;
  run_lbm(Variant::kBlocked35D, geom, prm, pair, 10, cfg, engine);
  const double mass1 = total_fluid_mass(pair.src(), geom);
  EXPECT_NEAR(mass1, mass0, 1e-9 * mass0);
}

// Lid-driven cavity: after some steps the fluid near the lid moves in the
// lid direction — validates the moving-wall momentum sign.
TEST(LbmPhysics, LidDragsFluid) {
  const long n = 16;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  BgkParams<double> prm;
  prm.omega = 1.0;
  prm.u_wall[0] = 0.1;

  LatticePair<double> pair(n, n, n);
  pair.src().init_equilibrium();
  core::Engine35 engine(1);
  run_lbm(Variant::kNaive, geom, prm, pair, 40, {}, engine);

  double u[3];
  pair.src().velocity(n / 2, n - 3, n / 2, u);
  EXPECT_GT(u[0], 1e-4);  // dragged along +x
  // Deep in the cavity the flow is much weaker.
  double u_deep[3];
  pair.src().velocity(n / 2, 2, n / 2, u_deep);
  EXPECT_LT(std::abs(u_deep[0]), std::abs(u[0]));
}

// SIMD backends agree bit-for-bit on a full cavity run (the vectorized
// pure-fluid fast path vs the scalar flag-checking path included).
TEST(LbmBackends, AgreeBitExact) {
  const long n = 18;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_lid();
  geom.set_solid_box(7, 10, 7, 10, 7, 10);
  geom.finalize();
  BgkParams<float> prm;
  prm.omega = 1.3f;
  prm.u_wall[0] = 0.05f;
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 12;

  core::Engine35 engine(2);
  LatticePair<float> scalar_pair(n, n, n);
  scalar_pair.src().init_equilibrium();
  run_lbm<float, simd::ScalarTag>(Variant::kBlocked35D, geom, prm, scalar_pair, 6, cfg,
                                  engine);
#if defined(__AVX__)
  LatticePair<float> avx_pair(n, n, n);
  avx_pair.src().init_equilibrium();
  run_lbm<float, simd::AvxTag>(Variant::kBlocked35D, geom, prm, avx_pair, 6, cfg,
                               engine);
  EXPECT_EQ(count_lattice_mismatches(scalar_pair.src(), avx_pair.src()), 0);
#endif
#if defined(__SSE2__)
  LatticePair<float> sse_pair(n, n, n);
  sse_pair.src().init_equilibrium();
  run_lbm<float, simd::SseTag>(Variant::kBlocked35D, geom, prm, sse_pair, 6, cfg,
                               engine);
  EXPECT_EQ(count_lattice_mismatches(scalar_pair.src(), sse_pair.src()), 0);
#endif
}

// Rest state is a fixed point of every variant.
TEST(LbmPhysics, RestStateIsStationary) {
  const long n = 12;
  Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.finalize();
  BgkParams<float> prm;
  prm.omega = 1.7f;
  for (Variant v : {Variant::kNaive, Variant::kTemporalOnly, Variant::kBlocked35D,
                    Variant::kBlocked4D}) {
    LatticePair<float> pair(n, n, n);
    pair.src().init_equilibrium();
    core::Engine35 engine(2);
    SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = 10;
    run_lbm(v, geom, prm, pair, 4, cfg, engine);
    double worst = 0;
    for (int i = 0; i < kQ; ++i)
      for (long z = 0; z < n; ++z)
        for (long y = 0; y < n; ++y)
          for (long x = 0; x < n; ++x)
            worst = std::max(worst, std::abs(static_cast<double>(
                                        pair.src().at(i, x, y, z) - weight<float>(i))));
    EXPECT_LT(worst, 1e-6) << to_string(v);
  }
}

}  // namespace
}  // namespace s35::lbm
