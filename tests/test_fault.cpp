// Fault-injection + recovery suite: CRC32C, Status/Expected, FaultPlan
// determinism, checkpoint v2 hardening (fuzz, truncation, v1 compat,
// atomic replace), and the distributed drivers' end-to-end recovery paths
// (transient halo retries, permanent rank failure, crash-and-resume) —
// every recovered run must finish bitwise identical to a fault-free one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "fault/fault_plan.h"
#include "fault/io_backend.h"
#include "fault/retry.h"
#include "grid/checkpoint.h"
#include "lbm/distributed.h"
#include "stencil/distributed.h"
#include "telemetry/telemetry.h"

namespace s35 {
namespace {

std::string tmp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes,
          std::size_t limit) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::size_t n = limit < bytes.size() ? limit : bytes.size();
  ASSERT_EQ(std::fwrite(bytes.data(), 1, n, f), n);
  std::fclose(f);
}

// A retry policy with negligible sleeps so fault-heavy tests stay fast.
fault::RetryPolicy fast_retry(int max_retries = 3) {
  fault::RetryPolicy p;
  p.max_retries = max_retries;
  p.base_delay = std::chrono::microseconds(1);
  p.max_delay = std::chrono::microseconds(4);
  return p;
}

// ---------------------------------------------------------------- CRC32C

TEST(Crc32c, KnownAnswerAndChaining) {
  // RFC 3720 check value for "123456789".
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  const std::uint32_t part = crc32c("12345", 5);
  EXPECT_EQ(crc32c("6789", 4, part), 0xE3069283u);
  EXPECT_NE(crc32c("123456788", 9), 0xE3069283u);
}

// --------------------------------------------------------- Status/Expected

TEST(Status, BasicsAndExpected) {
  fault::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "ok");

  fault::Status bad(fault::ErrorCode::kTruncated, "file ends early");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), fault::ErrorCode::kTruncated);
  EXPECT_EQ(bad.to_string(), "truncated: file ends early");
  EXPECT_TRUE(fault::is_transient(fault::ErrorCode::kTransient));
  EXPECT_FALSE(fault::is_transient(fault::ErrorCode::kCorrupted));

  fault::Expected<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  fault::Expected<int> err(fault::Status(fault::ErrorCode::kIoError, "disk"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), fault::ErrorCode::kIoError);
}

// ------------------------------------------------------------------ Retry

TEST(Retry, BackoffGrowsAndCaps) {
  fault::RetryPolicy p;  // 50us base, x2, 2000us cap
  EXPECT_EQ(fault::backoff_delay(p, 0).count(), 50);
  EXPECT_EQ(fault::backoff_delay(p, 1).count(), 100);
  EXPECT_EQ(fault::backoff_delay(p, 2).count(), 200);
  EXPECT_EQ(fault::backoff_delay(p, 10).count(), 2000);  // capped
}

TEST(Retry, TransientHealsWithinBudget) {
  int calls = 0;
  const fault::Status st = fault::retry_with_backoff(fast_retry(3), [&](int attempt) {
    ++calls;
    if (attempt < 2) return fault::Status(fault::ErrorCode::kTransient, "torn");
    return fault::Status();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(Retry, ExhaustsAndEscalates) {
  const fault::Status st = fault::retry_with_backoff(fast_retry(2), [](int) {
    return fault::Status(fault::ErrorCode::kTransient, "still torn");
  });
  EXPECT_EQ(st.code(), fault::ErrorCode::kRetriesExhausted);
  EXPECT_NE(st.message().find("still torn"), std::string::npos);
}

TEST(Retry, NonTransientReturnsImmediately) {
  int calls = 0;
  const fault::Status st = fault::retry_with_backoff(fast_retry(3), [&](int) {
    ++calls;
    return fault::Status(fault::ErrorCode::kIoError, "disk gone");
  });
  EXPECT_EQ(st.code(), fault::ErrorCode::kIoError);
  EXPECT_EQ(calls, 1);
}

// -------------------------------------------------------------- FaultPlan

TEST(FaultPlan, DeterministicReplay) {
  fault::FaultPlan a(1234), b(1234), other(99);
  for (fault::FaultPlan* p : {&a, &b, &other}) {
    p->halo_corrupt_prob = 0.3;
    p->halo_drop_prob = 0.2;
  }
  int differs_from_other = 0;
  for (std::uint64_t pass = 0; pass < 20; ++pass)
    for (std::uint64_t msg = 0; msg < 10; ++msg) {
      EXPECT_EQ(a.halo_fault(pass, msg, 0), b.halo_fault(pass, msg, 0));
      if (a.halo_fault(pass, msg, 0) != other.halo_fault(pass, msg, 0))
        ++differs_from_other;
    }
  EXPECT_GT(differs_from_other, 0);  // different seed, different schedule
}

TEST(FaultPlan, TransientSitesHeal) {
  fault::FaultPlan plan(7);
  plan.halo_corrupt_prob = 1.0;  // every site faulty
  plan.transient_attempts = 2;
  EXPECT_NE(plan.halo_fault(0, 0, 0), fault::HaloFault::kNone);
  EXPECT_NE(plan.halo_fault(0, 0, 1), fault::HaloFault::kNone);
  EXPECT_EQ(plan.halo_fault(0, 0, 2), fault::HaloFault::kNone);  // healed
  EXPECT_EQ(plan.counters().halo_faults, 2u);
}

TEST(FaultPlan, RankFailureFiresOnceAndRearms) {
  fault::FaultPlan plan(1);
  plan.fail_rank = 1;
  plan.fail_at_pass = 3;
  EXPECT_FALSE(plan.rank_fails(1, 2));
  EXPECT_FALSE(plan.rank_fails(0, 3));
  EXPECT_TRUE(plan.rank_fails(1, 3));
  EXPECT_FALSE(plan.rank_fails(1, 3));  // disarmed after firing
  plan.rearm();
  EXPECT_TRUE(plan.rank_fails(1, 3));
  EXPECT_EQ(plan.counters().rank_failures, 2u);
}

// -------------------------------------------------- checkpoint v2 format

TEST(CheckpointV2, RoundTripCarriesUserTag) {
  const std::string path = tmp_path("fault_rt.ckpt");
  grid::Grid3<float> a(11, 9, 7);
  a.fill_random(3, -2.0f, 2.0f);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, a, /*user_tag=*/42).ok());

  grid::Grid3<float> b(11, 9, 7);
  std::uint64_t tag = 0;
  ASSERT_TRUE(grid::load_checkpoint_ex(path, b, &tag).ok());
  EXPECT_EQ(tag, 42u);
  EXPECT_EQ(grid::count_mismatches(a, b), 0);

  const auto info = grid::probe_checkpoint(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, 2u);
  EXPECT_FALSE(info.value().lattice);
  EXPECT_EQ(info.value().nx, 11);
  EXPECT_EQ(info.value().user_tag, 42u);
  std::remove(path.c_str());
}

// Every single-bit flip anywhere in the file must be rejected (never
// crash, never load garbage), with the error class matching the region.
TEST(CheckpointV2, BitFlipFuzzRejectsEveryCorruption) {
  const std::string path = tmp_path("fault_fuzz.ckpt");
  const std::string mutated = tmp_path("fault_fuzz_mut.ckpt");
  grid::Grid3<float> a(8, 8, 8);
  a.fill_random(4);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, a, 5).ok());
  const std::vector<unsigned char> bytes = slurp(path);
  ASSERT_EQ(bytes.size(), 72u + 8 * 8 * 8 * sizeof(float));

  // All header bytes, then strided payload bytes (coprime stride).
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < 72; ++i) positions.push_back(i);
  for (std::size_t i = 72; i < bytes.size(); i += 97) positions.push_back(i);

  for (const std::size_t pos : positions) {
    std::vector<unsigned char> mut = bytes;
    mut[pos] ^= 0x10;
    spit(mutated, mut, mut.size());
    grid::Grid3<float> b(8, 8, 8);
    const fault::Status st = grid::load_checkpoint_ex(mutated, b);
    ASSERT_FALSE(st.ok()) << "flip at byte " << pos << " was accepted";
    if (pos < 8) {
      EXPECT_EQ(st.code(), fault::ErrorCode::kBadMagic) << "byte " << pos;
    } else {
      // Header flips are caught by the header CRC, payload flips by the
      // payload CRC — both are integrity failures.
      EXPECT_EQ(st.code(), fault::ErrorCode::kCorrupted) << "byte " << pos;
    }
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(CheckpointV2, TruncationFuzzRejectsEveryPrefix) {
  const std::string path = tmp_path("fault_trunc.ckpt");
  const std::string cut = tmp_path("fault_trunc_cut.ckpt");
  grid::Grid3<double> a(6, 5, 4);
  a.fill_random(5);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, a).ok());
  const std::vector<unsigned char> bytes = slurp(path);

  for (const std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                                std::size_t{40}, std::size_t{71}, std::size_t{72},
                                std::size_t{100}, bytes.size() - 1}) {
    spit(cut, bytes, len);
    grid::Grid3<double> b(6, 5, 4);
    const fault::Status st = grid::load_checkpoint_ex(cut, b);
    ASSERT_FALSE(st.ok()) << "prefix of " << len << " bytes was accepted";
    EXPECT_EQ(st.code(), fault::ErrorCode::kTruncated) << "len " << len;
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(CheckpointV2, RejectsShapeMismatchWithDistinctError) {
  const std::string path = tmp_path("fault_shape.ckpt");
  grid::Grid3<float> a(8, 8, 8);
  a.fill_random(6);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, a).ok());
  grid::Grid3<float> wrong(8, 8, 9);
  EXPECT_EQ(grid::load_checkpoint_ex(path, wrong).code(),
            fault::ErrorCode::kMismatch);
  grid::Grid3<double> wrong_type(8, 8, 8);
  EXPECT_EQ(grid::load_checkpoint_ex(path, wrong_type).code(),
            fault::ErrorCode::kMismatch);
  std::remove(path.c_str());
}

// Hand-written legacy v1 files still load (with user_tag = 0).
TEST(CheckpointV2, LoadsLegacyV1Files) {
  const std::string path = tmp_path("fault_v1.ckpt");
  grid::Grid3<float> a(7, 6, 5);
  a.fill_random(8, -1.0f, 1.0f);

  grid::detail::CheckpointHeader h{};
  std::memcpy(h.magic, grid::detail::kMagicGridV1, 8);
  h.elem_bytes = sizeof(float);
  h.arrays = 1;
  h.nx = 7;
  h.ny = 6;
  h.nz = 5;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&h, sizeof(h), 1, f), 1u);
  for (long z = 0; z < 5; ++z)
    for (long y = 0; y < 6; ++y)
      ASSERT_EQ(std::fwrite(a.row(y, z), sizeof(float), 7, f), 7u);
  std::fclose(f);

  grid::Grid3<float> b(7, 6, 5);
  std::uint64_t tag = 99;
  ASSERT_TRUE(grid::load_checkpoint_ex(path, b, &tag).ok());
  EXPECT_EQ(tag, 0u);  // v1 carries no tag
  EXPECT_EQ(grid::count_mismatches(a, b), 0);

  const auto info = grid::probe_checkpoint(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, 1u);
  std::remove(path.c_str());
}

TEST(CheckpointV2, BadMagicIsDistinctFromCorruption) {
  const std::string path = tmp_path("fault_magic.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "definitely not a checkpoint";
  ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
  std::fclose(f);
  grid::Grid3<float> b(4, 4, 4);
  EXPECT_EQ(grid::load_checkpoint_ex(path, b).code(), fault::ErrorCode::kBadMagic);
  std::remove(path.c_str());
}

// ------------------------------------------------- injected I/O failures

// A refused write must fail the save *and* leave the previous checkpoint
// untouched — the write-to-temp + atomic-rename guarantee.
TEST(FaultyIo, RefusedWriteLeavesOldCheckpointIntact) {
  const std::string path = tmp_path("fault_atomic.ckpt");
  grid::Grid3<float> old_data(9, 9, 9), new_data(9, 9, 9);
  old_data.fill_random(10);
  new_data.fill_random(11);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, old_data, 1).ok());

  fault::FaultPlan plan(0);
  plan.io_write_fail_op = 0;  // refuse the very first write of the next save
  fault::FaultyIoBackend faulty(plan);
  const fault::Status st = grid::save_checkpoint_ex(path, new_data, 2, &faulty);
  EXPECT_EQ(st.code(), fault::ErrorCode::kIoError);
  EXPECT_GE(plan.counters().io_write_failures, 1u);

  grid::Grid3<float> back(9, 9, 9);
  std::uint64_t tag = 0;
  ASSERT_TRUE(grid::load_checkpoint_ex(path, back, &tag).ok());
  EXPECT_EQ(tag, 1u);  // still the old file
  EXPECT_EQ(grid::count_mismatches(old_data, back), 0);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FaultyIo, CorruptedReadsSurfaceTheRightError) {
  const std::string path = tmp_path("fault_rot.ckpt");
  grid::Grid3<float> a(8, 8, 8);
  a.fill_random(12);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, a).ok());

  // Load reads: op 0 = magic, op 1 = header remainder, op 2+ = payload rows.
  const struct {
    int op;
    fault::ErrorCode want;
  } cases[] = {{0, fault::ErrorCode::kBadMagic},
               {1, fault::ErrorCode::kCorrupted},
               {2, fault::ErrorCode::kCorrupted}};
  for (const auto& c : cases) {
    fault::FaultPlan plan(0);
    plan.io_read_corrupt_op = c.op;
    fault::FaultyIoBackend faulty(plan);
    grid::Grid3<float> b(8, 8, 8);
    EXPECT_EQ(grid::load_checkpoint_ex(path, b, nullptr, &faulty).code(), c.want)
        << "read op " << c.op;
    EXPECT_EQ(plan.counters().io_read_corruptions, 1u);
  }
  std::remove(path.c_str());
}

// ------------------------------------- distributed stencil recovery paths

using StencilDriver = stencil::DistributedStencilDriver<stencil::Stencil7<float>, float>;

grid::Grid3<float> reference_run(long n, int ranks, int dim_t, int steps) {
  const auto stencil = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  stencil::SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 14;
  StencilDriver driver(n, n, n, ranks, dim_t);
  grid::Grid3<float> g(n, n, n);
  g.fill_random(777, -1.0f, 1.0f);
  driver.scatter(g);
  driver.run(stencil, steps, cfg, engine);
  grid::Grid3<float> out(n, n, n);
  driver.gather(out);
  return out;
}

// Transient halo corruption on every message is absorbed by the backoff
// retries with zero divergence from the fault-free run.
TEST(DistributedRecovery, TransientHaloFaultsAbsorbedBitExact) {
  const long n = 24;
  const int ranks = 2, dim_t = 2, steps = 6;
  const grid::Grid3<float> want = reference_run(n, ranks, dim_t, steps);

  for (const bool drop : {false, true}) {
    const auto stencil = stencil::default_stencil7<float>();
    core::Engine35 engine(2);
    stencil::SweepConfig cfg;
    cfg.dim_t = dim_t;
    cfg.dim_x = 14;
    StencilDriver driver(n, n, n, ranks, dim_t);
    fault::FaultPlan plan(2024);
    (drop ? plan.halo_drop_prob : plan.halo_corrupt_prob) = 1.0;
    plan.transient_attempts = 1;  // every message torn once, healed on retry
    driver.set_fault_plan(&plan);
    driver.set_retry_policy(fast_retry(3));
    grid::Grid3<float> g(n, n, n);
    g.fill_random(777, -1.0f, 1.0f);
    driver.scatter(g);
    const fault::Status st = driver.run_guarded(stencil, steps, cfg, engine);
    ASSERT_TRUE(st.ok()) << st.to_string();

    grid::Grid3<float> got(n, n, n);
    driver.gather(got);
    EXPECT_EQ(grid::count_mismatches(want, got), 0) << "drop=" << drop;
    EXPECT_GT(driver.stats().halo_faults, 0u);
    EXPECT_EQ(driver.stats().halo_retries, driver.stats().halo_faults);
  }
}

TEST(DistributedRecovery, RetriesExhaustedSurfacesWithoutCheckpoint) {
  const auto stencil = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  stencil::SweepConfig cfg;
  cfg.dim_t = 2;
  StencilDriver driver(16, 16, 16, 2, 2);
  fault::FaultPlan plan(3);
  plan.halo_corrupt_prob = 1.0;
  plan.transient_attempts = 100;  // never heals within any sane budget
  driver.set_fault_plan(&plan);
  driver.set_retry_policy(fast_retry(2));
  grid::Grid3<float> g(16, 16, 16);
  g.fill_random(1);
  driver.scatter(g);
  const fault::Status st = driver.run_guarded(stencil, 2, cfg, engine);
  EXPECT_EQ(st.code(), fault::ErrorCode::kRetriesExhausted);
}

// Permanent rank death mid-run: repartition to the survivors, restore the
// last checkpoint, replay — and still match the fault-free run bit for bit.
TEST(DistributedRecovery, RankFailureRecoversFromCheckpointBitExact) {
  const long n = 36;
  const int ranks = 3, dim_t = 2, steps = 6;
  const grid::Grid3<float> want = reference_run(n, ranks, dim_t, steps);
  const std::string ckpt = tmp_path("fault_rankfail.ckpt");

  telemetry::reset();
  telemetry::set_enabled(true);
  const auto stencil = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  stencil::SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 14;
  StencilDriver driver(n, n, n, ranks, dim_t);
  fault::FaultPlan plan(5);
  plan.fail_rank = 1;
  plan.fail_at_pass = 1;
  driver.set_fault_plan(&plan);
  driver.enable_checkpointing(ckpt, /*every_passes=*/1);
  grid::Grid3<float> g(n, n, n);
  g.fill_random(777, -1.0f, 1.0f);
  driver.scatter(g);
  const fault::Status st = driver.run_guarded(stencil, steps, cfg, engine);
  ASSERT_TRUE(st.ok()) << st.to_string();

  grid::Grid3<float> got(n, n, n);
  driver.gather(got);
  EXPECT_EQ(grid::count_mismatches(want, got), 0);
  EXPECT_EQ(driver.stats().rank_failures, 1u);
  EXPECT_GE(driver.stats().restores, 1u);
  EXPECT_GE(driver.stats().checkpoints_written, 1u);
  EXPECT_LT(driver.ranks(), ranks);  // degraded mode
  EXPECT_EQ(driver.steps_done(), static_cast<std::uint64_t>(steps));
  // Recovery time is charged to the telemetry kRecovery phase.
  EXPECT_GT(telemetry::aggregate().calls[static_cast<int>(
                telemetry::Phase::kRecovery)],
            0u);
  telemetry::set_enabled(false);
  telemetry::reset();
  std::remove(ckpt.c_str());
}

TEST(DistributedRecovery, RankFailureWithoutCheckpointIsUnavailable) {
  const auto stencil = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  stencil::SweepConfig cfg;
  cfg.dim_t = 2;
  StencilDriver driver(24, 24, 24, 2, 2);
  fault::FaultPlan plan(6);
  plan.fail_rank = 0;
  plan.fail_at_pass = 0;
  driver.set_fault_plan(&plan);
  grid::Grid3<float> g(24, 24, 24);
  g.fill_random(2);
  driver.scatter(g);
  EXPECT_EQ(driver.run_guarded(stencil, 4, cfg, engine).code(),
            fault::ErrorCode::kUnavailable);
}

TEST(DistributedRecovery, RefusedRepartitionAllocationSurfacesNotAborts) {
  const auto stencil = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  stencil::SweepConfig cfg;
  cfg.dim_t = 2;
  StencilDriver driver(24, 24, 24, 2, 2);
  fault::FaultPlan plan(7);
  plan.fail_rank = 1;
  plan.fail_at_pass = 1;
  plan.alloc_fail_prob = 1.0;
  driver.set_fault_plan(&plan);
  driver.enable_checkpointing(tmp_path("fault_alloc.ckpt"), 1);
  grid::Grid3<float> g(24, 24, 24);
  g.fill_random(3);
  driver.scatter(g);
  EXPECT_EQ(driver.run_guarded(stencil, 4, cfg, engine).code(),
            fault::ErrorCode::kAllocFailure);
  std::remove(tmp_path("fault_alloc.ckpt").c_str());
}

// Crash at pass k, then resume in a brand-new driver: the completed-step
// count rides in the checkpoint's user tag and the finished run is bitwise
// identical to the uninterrupted one.
TEST(DistributedRecovery, CrashAndResumeBitExact) {
  const long n = 24;
  const int ranks = 2, dim_t = 2, steps = 6;
  const grid::Grid3<float> want = reference_run(n, ranks, dim_t, steps);
  const std::string ckpt = tmp_path("fault_resume.ckpt");

  const auto stencil = stencil::default_stencil7<float>();
  core::Engine35 engine(2);
  stencil::SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 14;
  {
    StencilDriver first(n, n, n, ranks, dim_t);
    first.enable_checkpointing(ckpt, 1);
    grid::Grid3<float> g(n, n, n);
    g.fill_random(777, -1.0f, 1.0f);
    first.scatter(g);
    ASSERT_TRUE(first.run_guarded(stencil, 4, cfg, engine).ok());
  }  // "crash": the driver (and all in-memory state) is gone

  const auto info = grid::probe_checkpoint(ckpt);
  ASSERT_TRUE(info.ok());
  const auto done = info.value().user_tag;
  ASSERT_GT(done, 0u);
  ASSERT_LT(done, static_cast<std::uint64_t>(steps));

  StencilDriver second(n, n, n, ranks, dim_t);
  ASSERT_TRUE(second.resume_from(ckpt).ok());
  EXPECT_EQ(second.steps_done(), done);
  ASSERT_TRUE(second
                  .run_guarded(stencil, static_cast<int>(steps - done), cfg, engine)
                  .ok());

  grid::Grid3<float> got(n, n, n);
  second.gather(got);
  EXPECT_EQ(grid::count_mismatches(want, got), 0);
  std::remove(ckpt.c_str());
}

// ------------------------------------------- distributed LBM recovery path

// The LBM twin under combined stress — every halo message torn once AND a
// permanent rank death — still matches the fault-free single-domain run.
TEST(DistributedRecovery, LbmCombinedFaultsRecoverBitExact) {
  const long n = 14;
  const int ranks = 2, dim_t = 2, steps = 6;
  lbm::Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_lid();
  geom.finalize();
  lbm::BgkParams<float> prm;
  prm.omega = 1.2f;
  prm.u_wall[0] = 0.05f;
  core::Engine35 engine(2);
  lbm::SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 10;

  lbm::LatticePair<float> full(n, n, n);
  full.src().init_equilibrium();
  lbm::run_lbm(lbm::Variant::kBlocked35D, geom, prm, full, steps, cfg, engine);

  const std::string ckpt = tmp_path("fault_lbm.ckpt");
  lbm::DistributedLbmDriver<float> driver(geom, ranks, dim_t);
  fault::FaultPlan plan(31);
  plan.halo_corrupt_prob = 1.0;
  plan.transient_attempts = 1;
  plan.fail_rank = 1;
  plan.fail_at_pass = 1;
  driver.set_fault_plan(&plan);
  driver.set_retry_policy(fast_retry(3));
  driver.enable_checkpointing(ckpt, 1);
  lbm::Lattice<float> init(n, n, n);
  init.init_equilibrium();
  driver.scatter(init);
  const fault::Status st = driver.run_guarded(prm, steps, cfg, engine);
  ASSERT_TRUE(st.ok()) << st.to_string();

  lbm::Lattice<float> got(n, n, n);
  driver.gather(got);
  long bad = 0;
  for (int i = 0; i < lbm::kQ; ++i)
    for (long z = 0; z < n; ++z)
      for (long y = 0; y < n; ++y)
        for (long x = 0; x < n; ++x) {
          const float a = full.src().at(i, x, y, z);
          const float b = got.at(i, x, y, z);
          if (std::memcmp(&a, &b, sizeof(float)) != 0) ++bad;
        }
  EXPECT_EQ(bad, 0);
  EXPECT_GT(driver.stats().halo_faults, 0u);
  EXPECT_EQ(driver.stats().rank_failures, 1u);
  EXPECT_GE(driver.stats().restores, 1u);
  EXPECT_EQ(driver.ranks(), 1);  // degraded to a single survivor

  lbm::Lattice<float> reread(n, n, n);
  std::uint64_t tag = 0;
  EXPECT_TRUE(grid::load_checkpoint_arrays_ex(ckpt, reread, lbm::kQ, &tag).ok());
  std::remove(ckpt.c_str());
}

// --------------------------------------------------- decorrelation jitter

// Documented bound: (1 - jitter) * d <= jittered <= min((1 + jitter) * d,
// max_delay), where d is the deterministic capped delay.
TEST(Retry, JitteredDelayHonorsTheBound) {
  fault::RetryPolicy p;  // 50us base, x2, 2000us cap, jitter 0.25
  for (int retry = 0; retry < 12; ++retry) {
    const double d = static_cast<double>(fault::backoff_delay(p, retry).count());
    for (std::uint64_t salt = 0; salt < 32; ++salt) {
      const double j = static_cast<double>(
          fault::backoff_delay_jittered(p, retry, salt).count());
      EXPECT_GE(j, (1.0 - p.jitter) * d - 1.0) << "retry=" << retry;
      const double hi = (1.0 + p.jitter) * d;
      const double cap = static_cast<double>(p.max_delay.count());
      EXPECT_LE(j, (hi < cap ? hi : cap) + 1.0) << "retry=" << retry;
    }
  }
}

TEST(Retry, JitterIsDeterministicPerSaltAndSpreadsSalts) {
  fault::RetryPolicy p;
  // Replayable: the same (policy, retry, salt) always sleeps the same.
  EXPECT_EQ(fault::backoff_delay_jittered(p, 3, 7).count(),
            fault::backoff_delay_jittered(p, 3, 7).count());
  // Decorrelating: across salts the delays actually differ.
  long distinct = 0;
  const long base = fault::backoff_delay_jittered(p, 3, 0).count();
  for (std::uint64_t salt = 1; salt < 64; ++salt)
    if (fault::backoff_delay_jittered(p, 3, salt).count() != base) ++distinct;
  EXPECT_GT(distinct, 0);
  // jitter = 0 degenerates to the exact deterministic schedule.
  p.jitter = 0.0;
  for (int retry = 0; retry < 6; ++retry)
    EXPECT_EQ(fault::backoff_delay_jittered(p, retry, 99).count(),
              fault::backoff_delay(p, retry).count());
}

// ---------------------------------------------------- SDC fault knobs

TEST(FaultPlan, SdcKindsFireOnceAtTheirSiteAndRearm) {
  fault::FaultPlan plan(7);
  plan.flip_pass = 2;
  plan.flip_round = 5;
  plan.wrong_row_pass = 1;
  plan.wrong_row_z = 10;
  plan.wrong_row_y = 3;
  plan.stall_tid = 1;
  plan.stall_pass = 0;
  plan.stall_ms = 10;

  // Wrong site: never fires.
  EXPECT_FALSE(plan.plane_flip_fires(2, 4));
  EXPECT_FALSE(plan.plane_flip_fires(1, 5));
  EXPECT_FALSE(plan.wrong_row_fires(1, 10, 4));
  EXPECT_FALSE(plan.stall_fires(0, 0));
  // Right site: fires exactly once (one-shot models a transient upset).
  EXPECT_TRUE(plan.plane_flip_fires(2, 5));
  EXPECT_FALSE(plan.plane_flip_fires(2, 5));
  EXPECT_TRUE(plan.wrong_row_fires(1, 10, 3));
  EXPECT_FALSE(plan.wrong_row_fires(1, 10, 3));
  EXPECT_TRUE(plan.stall_fires(0, 1));
  EXPECT_FALSE(plan.stall_fires(0, 1));
  EXPECT_EQ(plan.counters().plane_flips, 1u);
  EXPECT_EQ(plan.counters().wrong_rows, 1u);
  EXPECT_EQ(plan.counters().thread_stalls, 1u);
  // rearm() re-arms the one-shots; the counters keep accumulating.
  plan.rearm();
  EXPECT_TRUE(plan.plane_flip_fires(2, 5));
  EXPECT_TRUE(plan.wrong_row_fires(1, 10, 3));
  EXPECT_TRUE(plan.stall_fires(0, 1));
  EXPECT_EQ(plan.counters().plane_flips, 2u);
}

TEST(FaultPlan, StickyWrongRowRefiresOnEveryReplay) {
  fault::FaultPlan plan(7);
  plan.wrong_row_pass = 1;
  plan.wrong_row_z = 6;
  plan.wrong_row_y = 2;
  plan.wrong_row_sticky = true;
  // Re-fires on every re-execution of its (pass, z, y) site — the knob the
  // recovery-ladder escalation tests lean on.
  EXPECT_TRUE(plan.wrong_row_fires(1, 6, 2));
  EXPECT_TRUE(plan.wrong_row_fires(1, 6, 2));
  EXPECT_TRUE(plan.wrong_row_fires(1, 6, 2));
  EXPECT_FALSE(plan.wrong_row_fires(2, 6, 2));
  EXPECT_EQ(plan.counters().wrong_rows, 3u);
}

// ------------------------------------- checkpoint header/length hardening

// A file shorter than the header-declared payload length is reported as
// kTruncated (a clear length mismatch), not as a misleading payload-CRC
// kCorrupted.
TEST(CheckpointV2, ShortPayloadReportsTruncatedNotCorrupted) {
  const std::string path = tmp_path("fault_shortpay.ckpt");
  grid::Grid3<float> g(8, 8, 8);
  g.fill_random(21);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, g, 5).ok());
  const std::vector<unsigned char> bytes = slurp(path);

  for (std::size_t cut : {bytes.size() - 1, bytes.size() - 7,
                          bytes.size() - bytes.size() / 3}) {
    spit(path, bytes, cut);
    grid::Grid3<float> out(8, 8, 8);
    std::uint64_t tag = 0;
    const fault::Status st = grid::load_checkpoint_ex(path, out, &tag);
    EXPECT_EQ(st.code(), fault::ErrorCode::kTruncated) << "cut=" << cut;
    // probe_checkpoint applies the same length validation.
    const auto info = grid::probe_checkpoint(path);
    EXPECT_FALSE(info.ok());
    EXPECT_EQ(info.status().code(), fault::ErrorCode::kTruncated);
  }
  std::remove(path.c_str());
}

// A checkpoint claiming more completed steps than the run ever schedules
// is rejected up front as kMismatch instead of silently fast-forwarding.
TEST(DistributedRecovery, ResumeRejectsImplausibleStepTag) {
  const long n = 24;
  const std::string path = tmp_path("fault_badtag.ckpt");
  grid::Grid3<float> g(n, n, n);
  g.fill_random(9);
  ASSERT_TRUE(grid::save_checkpoint_ex(path, g, /*user_tag=*/100).ok());

  StencilDriver driver(n, n, n, 2, 2);
  const fault::Status st = driver.resume_from(path, /*max_steps=*/6);
  EXPECT_EQ(st.code(), fault::ErrorCode::kMismatch);
  EXPECT_NE(st.message().find("100"), std::string::npos);
  // Without a bound (legacy call shape) the tag is taken at face value.
  EXPECT_TRUE(driver.resume_from(path).ok());
  EXPECT_EQ(driver.steps_done(), 100u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s35
