#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "stencil/sweeps.h"

namespace s35::stencil {
namespace {

// Independent scalar reference: plain triple loop, frozen boundary shell,
// same per-point expression as Stencil7::point / Stencil27::point.
template <typename S, typename T>
void reference_steps(const S& stencil, grid::Grid3<T>& grid, int steps) {
  constexpr long R = S::radius;
  grid::Grid3<T> tmp(grid.nx(), grid.ny(), grid.nz());
  for (int s = 0; s < steps; ++s) {
    tmp.copy_from(grid);  // boundary shell carries over
    for (long z = R; z < grid.nz() - R; ++z)
      for (long y = R; y < grid.ny() - R; ++y) {
        const auto acc = [&](int dz, int dy) -> const T* {
          return grid.row(y + dy, z + dz);
        };
        T* out = tmp.row(y, z);
        for (long x = R; x < grid.nx() - R; ++x) out[x] = stencil.point(acc, x);
      }
    grid.copy_from(tmp);
  }
}

struct Case {
  Variant variant;
  long nx, ny, nz;
  int steps;
  SweepConfig cfg;
  std::string name;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const auto add = [&](Variant v, long nx, long ny, long nz, int steps, SweepConfig cfg,
                       std::string name) {
    cases.push_back({v, nx, ny, nz, steps, cfg, std::move(name)});
  };

  add(Variant::kNaive, 12, 9, 7, 3, {}, "naive_small");
  add(Variant::kNaive, 40, 40, 40, 2, {}, "naive_cube");
  add(Variant::kSpatial3D, 40, 40, 40, 2, {.dim_x = 8}, "spatial3d_8");
  add(Variant::kSpatial3D, 33, 21, 17, 3, {.dim_x = 16, .dim_y = 8, .dim_z = 4},
      "spatial3d_rect");
  add(Variant::kSpatial25D, 40, 40, 40, 2, {.dim_x = 16}, "spatial25d_16");
  add(Variant::kSpatial25D, 29, 31, 11, 3, {.dim_x = 12, .dim_y = 20}, "spatial25d_rect");
  add(Variant::kTemporalOnly, 24, 24, 24, 5, {.dim_t = 2}, "temporal_t2");
  add(Variant::kTemporalOnly, 20, 16, 30, 7, {.dim_t = 3}, "temporal_t3");
  add(Variant::kBlocked4D, 40, 40, 40, 4, {.dim_t = 2, .dim_x = 16}, "blocked4d_t2");
  add(Variant::kBlocked4D, 25, 19, 23, 6, {.dim_t = 3, .dim_x = 14, .dim_y = 18, .dim_z = 10},
      "blocked4d_rect");
  add(Variant::kBlocked35D, 40, 40, 40, 4, {.dim_t = 2, .dim_x = 16}, "blocked35d_t2");
  add(Variant::kBlocked35D, 40, 40, 40, 6, {.dim_t = 3, .dim_x = 24}, "blocked35d_t3");
  add(Variant::kBlocked35D, 37, 23, 19, 5, {.dim_t = 2, .dim_x = 12, .dim_y = 18},
      "blocked35d_rect");
  add(Variant::kBlocked35D, 40, 40, 40, 4,
      {.dim_t = 2, .dim_x = 16, .serialized = true}, "blocked35d_serialized");
  // Partial final pass: steps not a multiple of dim_t.
  add(Variant::kBlocked35D, 32, 32, 32, 5, {.dim_t = 3, .dim_x = 20}, "blocked35d_partial");
  // dim_t larger than what fits: single-tile temporal with big dim_t.
  add(Variant::kTemporalOnly, 16, 16, 40, 4, {.dim_t = 4}, "temporal_t4");
  return cases;
}

class Stencil7Exact : public ::testing::TestWithParam<std::tuple<Case, int>> {};

TEST_P(Stencil7Exact, MatchesReferenceBitExact) {
  const auto& [c, threads] = GetParam();
  const auto stencil = default_stencil7<float>();

  grid::Grid3<float> expected(c.nx, c.ny, c.nz);
  expected.fill_random(1234, -1.0f, 1.0f);
  grid::GridPair<float> pair(c.nx, c.ny, c.nz);
  pair.src().copy_from(expected);

  reference_steps(stencil, expected, c.steps);

  core::Engine35 engine(threads);
  run_sweep(c.variant, stencil, pair, c.steps, c.cfg, engine);

  EXPECT_EQ(grid::count_mismatches(expected, pair.src()), 0)
      << c.name << " threads=" << threads
      << " maxdiff=" << grid::max_abs_diff(expected, pair.src());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Stencil7Exact,
                         ::testing::Combine(::testing::ValuesIn(make_cases()),
                                            ::testing::Values(1, 3, 4)),
                         [](const auto& info) {
                           return std::get<0>(info.param).name + "_t" +
                                  std::to_string(std::get<1>(info.param));
                         });

// Double precision spot checks across all variants.
class Stencil7Double : public ::testing::TestWithParam<Case> {};

TEST_P(Stencil7Double, MatchesReferenceBitExact) {
  const Case& c = GetParam();
  const auto stencil = default_stencil7<double>();
  grid::Grid3<double> expected(c.nx, c.ny, c.nz);
  expected.fill_random(77, -2.0, 2.0);
  grid::GridPair<double> pair(c.nx, c.ny, c.nz);
  pair.src().copy_from(expected);
  reference_steps(stencil, expected, c.steps);
  core::Engine35 engine(2);
  run_sweep(c.variant, stencil, pair, c.steps, c.cfg, engine);
  EXPECT_EQ(grid::count_mismatches(expected, pair.src()), 0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Stencil7Double, ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

// 27-point stencil across all variants (cube neighborhood exercises the
// diagonal rows the 7-point kernel never touches).
class Stencil27Exact : public ::testing::TestWithParam<Case> {};

TEST_P(Stencil27Exact, MatchesReferenceBitExact) {
  const Case& c = GetParam();
  const auto stencil = default_stencil27<float>();
  grid::Grid3<float> expected(c.nx, c.ny, c.nz);
  expected.fill_random(555, 0.0f, 1.0f);
  grid::GridPair<float> pair(c.nx, c.ny, c.nz);
  pair.src().copy_from(expected);
  reference_steps(stencil, expected, c.steps);
  core::Engine35 engine(3);
  run_sweep(c.variant, stencil, pair, c.steps, c.cfg, engine);
  EXPECT_EQ(grid::count_mismatches(expected, pair.src()), 0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Stencil27Exact, ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

// Boundary shell must be frozen by every variant.
TEST(StencilBoundary, ShellNeverChanges) {
  const long n = 20;
  const auto stencil = default_stencil7<float>();
  for (Variant v : {Variant::kNaive, Variant::kSpatial3D, Variant::kSpatial25D,
                    Variant::kTemporalOnly, Variant::kBlocked4D, Variant::kBlocked35D}) {
    grid::GridPair<float> pair(n, n, n);
    pair.src().fill_random(31, 1.0f, 2.0f);
    grid::Grid3<float> original(n, n, n);
    original.copy_from(pair.src());

    SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = 12;
    core::Engine35 engine(2);
    run_sweep(v, stencil, pair, 4, cfg, engine);

    for (long z = 0; z < n; ++z)
      for (long y = 0; y < n; ++y)
        for (long x = 0; x < n; ++x) {
          const bool shell = x == 0 || x == n - 1 || y == 0 || y == n - 1 || z == 0 ||
                             z == n - 1;
          if (shell) {
            ASSERT_EQ(pair.src().at(x, y, z), original.at(x, y, z))
                << to_string(v) << " at " << x << "," << y << "," << z;
          }
        }
  }
}

// Zero steps must be an exact no-op for every variant.
TEST(StencilSweep, ZeroStepsIsIdentity) {
  const auto stencil = default_stencil7<float>();
  for (Variant v : {Variant::kNaive, Variant::kBlocked35D}) {
    grid::GridPair<float> pair(10, 10, 10);
    pair.src().fill_random(8);
    grid::Grid3<float> original(10, 10, 10);
    original.copy_from(pair.src());
    SweepConfig cfg;
    cfg.dim_x = 8;
    core::Engine35 engine(1);
    run_sweep(v, stencil, pair, 0, cfg, engine);
    EXPECT_EQ(grid::count_mismatches(original, pair.src()), 0);
  }
}

}  // namespace
}  // namespace s35::stencil
