#include <gtest/gtest.h>

#include <string>

#include "stencil/periodic.h"
#include "stencil/stencil_star.h"
#include "stencil/sweeps.h"

namespace s35::stencil {
namespace {

// Scalar reference with a frozen shell of thickness S::radius.
template <typename S, typename T>
void reference_steps(const S& stencil, grid::Grid3<T>& grid, int steps) {
  constexpr long R = S::radius;
  grid::Grid3<T> tmp(grid.nx(), grid.ny(), grid.nz());
  for (int s = 0; s < steps; ++s) {
    tmp.copy_from(grid);
    for (long z = R; z < grid.nz() - R; ++z)
      for (long y = R; y < grid.ny() - R; ++y) {
        const auto acc = [&](int dz, int dy) -> const T* {
          return grid.row(y + dy, z + dz);
        };
        T* out = tmp.row(y, z);
        for (long x = R; x < grid.nx() - R; ++x) out[x] = stencil.point(acc, x);
      }
    grid.copy_from(tmp);
  }
}

template <typename S>
void check_all_variants(const S& stencil, long n, int steps, int dim_t, long dim_x) {
  grid::Grid3<float> expected(n, n, n);
  expected.fill_random(404, -1.0f, 1.0f);
  reference_steps(stencil, expected, steps);

  core::Engine35 engine(3);
  const struct {
    Variant v;
    SweepConfig cfg;
    const char* name;
  } runs[] = {
      {Variant::kNaive, {}, "naive"},
      {Variant::kSpatial3D, {.dim_x = dim_x}, "3d"},
      {Variant::kTemporalOnly, {.dim_t = dim_t}, "temporal"},
      {Variant::kBlocked4D, {.dim_t = dim_t, .dim_x = dim_x}, "4d"},
      {Variant::kBlocked35D, {.dim_t = dim_t, .dim_x = dim_x}, "3.5d"},
      {Variant::kBlocked35D, {.dim_t = dim_t, .dim_x = dim_x, .serialized = true},
       "3.5d-serialized"},
  };
  for (const auto& r : runs) {
    grid::GridPair<float> pair(n, n, n);
    pair.src().fill_random(404, -1.0f, 1.0f);
    run_sweep(r.v, stencil, pair, steps, r.cfg, engine);
    EXPECT_EQ(grid::count_mismatches(expected, pair.src()), 0)
        << "R=" << S::radius << " " << r.name;
  }
}

// Radius-2 star through every sweep variant: ring depth 6, stagger 3,
// shrink 2/step — the general-R machinery end to end.
TEST(HighOrderStencil, Radius2AllVariantsExact) {
  check_all_variants(default_star2<float>(), 36, 4, 2, /*dim_x=*/24);
}

TEST(HighOrderStencil, Radius2DeeperTemporal) {
  check_all_variants(default_star2<float>(), 44, 6, 3, /*dim_x=*/32);
}

// Radius-3 star: ring depth 8, stagger 4.
TEST(HighOrderStencil, Radius3AllVariantsExact) {
  check_all_variants(default_star3<float>(), 40, 4, 2, /*dim_x=*/30);
}

// Periodic torus: plane waves are exact eigenvectors of the star operator,
// lambda = c0 + sum_d 2 cd (cos d kx + cos d ky + cos d kz).
TEST(HighOrderStencil, Radius2PeriodicEigenvalue) {
  const long n = 24;
  const auto stencil = default_star2<double>();
  PeriodicStencilDriver<StencilStar<double, 2>, double>::Options opt;
  opt.dim_t = 2;
  PeriodicStencilDriver<StencilStar<double, 2>, double> driver(n, n, n, opt);

  const double k = 2.0 * M_PI / n;
  driver.fill_with([&](long x, long y, long z) {
    return std::cos(k * x) * std::cos(2 * k * y) * std::cos(k * z);
  });

  const int steps = 6;
  core::Engine35 engine(2);
  driver.run(stencil, steps, engine);

  double lambda = stencil.center;
  for (int d = 1; d <= 2; ++d) {
    lambda += 2.0 * stencil.ring[static_cast<std::size_t>(d - 1)] *
              (std::cos(d * k) + std::cos(d * 2 * k) + std::cos(d * k));
  }
  const double scale = std::pow(lambda, steps);
  double worst = 0.0;
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x) {
        const double expect =
            scale * std::cos(k * x) * std::cos(2 * k * y) * std::cos(k * z);
        worst = std::max(worst, std::abs(driver.at(x, y, z) - expect));
      }
  EXPECT_LT(worst, 1e-12);
}

// The frozen shell must have thickness R, not 1.
TEST(HighOrderStencil, Radius2ShellFrozen) {
  const long n = 24;
  const auto stencil = default_star2<float>();
  grid::GridPair<float> pair(n, n, n);
  pair.src().fill_random(17, 1.0f, 2.0f);
  grid::Grid3<float> original(n, n, n);
  original.copy_from(pair.src());

  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 16;
  run_sweep(Variant::kBlocked35D, stencil, pair, 4, cfg, engine);

  long changed_shell = 0;
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x) {
        const bool shell = x < 2 || x >= n - 2 || y < 2 || y >= n - 2 || z < 2 ||
                           z >= n - 2;
        if (shell && pair.src().at(x, y, z) != original.at(x, y, z)) ++changed_shell;
      }
  EXPECT_EQ(changed_shell, 0);
}

}  // namespace
}  // namespace s35::stencil
