#include <gtest/gtest.h>

#include "gpusim/programs.h"
#include "gpusim/simt.h"

namespace s35::gpusim {
namespace {

using machine::Precision;

// GT200 coalescing rule at 64 B transactions.
TEST(Coalescing, AlignedContiguousFloat) {
  // 32 lanes x 4 B contiguous, aligned: two 64 B transactions.
  EXPECT_EQ(coalesced_transactions(32, 4, 4, 0), 2);
}

TEST(Coalescing, ShiftedContiguousFloat) {
  // Same but shifted one element: straddles three segments.
  EXPECT_EQ(coalesced_transactions(32, 4, 4, 4), 3);
}

TEST(Coalescing, DoublePrecision) {
  EXPECT_EQ(coalesced_transactions(32, 8, 8, 0), 4);
  EXPECT_EQ(coalesced_transactions(32, 8, 8, 8), 5);
}

TEST(Coalescing, StridedIsUncoalesced) {
  // Column-major-style access: stride 256 B -> one transaction per lane.
  EXPECT_EQ(coalesced_transactions(32, 4, 256, 0), 32);
  // Stride 2 elements: every other word -> twice the transactions.
  EXPECT_EQ(coalesced_transactions(32, 4, 8, 0), 4);
}

TEST(Coalescing, SingleLane) { EXPECT_EQ(coalesced_transactions(1, 4, 4, 0), 1); }

// Latency hiding: a memory-latency-bound program speeds up with more
// resident warps.
TEST(Simulator, MoreWarpsHideLatency) {
  SimtConfig cfg;
  BlockProgram prog;
  prog.body = {{Op::kGlobalLoad, 2, 1}, {Op::kFlop, 1, 8}};
  prog.iterations = 200;
  prog.updates_per_iteration = 32;
  prog.warps_per_block = 1;
  prog.shared_bytes = cfg.shared_bytes;  // one block per SM: warps = warps_per_block
  const double one = simulate(cfg, prog).mups;
  prog.warps_per_block = 8;
  prog.updates_per_iteration = 8 * 32;
  const double eight = simulate(cfg, prog).mups;
  EXPECT_GT(eight, 3.0 * one);
}

// A pure-arithmetic program is issue-bound: rate = lanes x clock / flops.
TEST(Simulator, ComputeBoundMatchesIssueRate) {
  SimtConfig cfg;
  BlockProgram prog;
  prog.body = {{Op::kFlop, 1, 16}};
  prog.iterations = 500;
  prog.warps_per_block = 8;
  prog.updates_per_iteration = 8 * 32;
  const SimResult r = simulate(cfg, prog);
  const double expect =
      cfg.sp_lanes * cfg.clock_ghz * 1e9 * cfg.num_sms / 16.0 / 1e6;
  EXPECT_NEAR(r.mups, expect, 0.05 * expect);
  EXPECT_FALSE(r.bandwidth_bound);
}

// A pure-streaming program saturates the bandwidth limiter.
TEST(Simulator, BandwidthBoundSaturates) {
  SimtConfig cfg;
  BlockProgram prog;
  prog.body = {{Op::kGlobalLoad, 8, 1}};
  prog.iterations = 300;
  prog.warps_per_block = 8;
  prog.updates_per_iteration = 8 * 32;
  const SimResult r = simulate(cfg, prog);
  EXPECT_TRUE(r.bandwidth_bound);
  EXPECT_NEAR(r.achieved_gbps, cfg.mem_bw_gbps, 0.1 * cfg.mem_bw_gbps);
}

// Occupancy limits from shared memory and registers.
TEST(Simulator, OccupancyLimits) {
  SimtConfig cfg;
  BlockProgram prog;
  prog.body = {{Op::kFlop, 1, 4}};
  prog.iterations = 10;
  prog.warps_per_block = 4;
  prog.updates_per_iteration = 1;
  prog.shared_bytes = cfg.shared_bytes / 2;  // two blocks fit
  EXPECT_EQ(simulate(cfg, prog).concurrent_blocks, 2);
  prog.shared_bytes = 0;
  prog.regs_bytes_per_thread = cfg.regfile_bytes / (4 * 32);  // one block
  EXPECT_EQ(simulate(cfg, prog).concurrent_blocks, 1);
}

// Barriers serialize warps of a block: a sync-heavy program is slower than
// the same instruction mix without syncs.
TEST(Simulator, SyncCostsTime) {
  SimtConfig cfg;
  BlockProgram with, without;
  with.body = {{Op::kGlobalLoad, 2, 1}, {Op::kSync, 1, 1}, {Op::kFlop, 1, 4}};
  without.body = {{Op::kGlobalLoad, 2, 1}, {Op::kFlop, 1, 4}};
  for (auto* p : {&with, &without}) {
    p->iterations = 100;
    p->warps_per_block = 8;
    p->updates_per_iteration = 8 * 32;
  }
  EXPECT_LT(simulate(cfg, with).mups, simulate(cfg, without).mups);
}

// The headline: the paper's Figure 4(c) SP ordering and magnitudes emerge
// from kernel structure alone (no per-scheme rate calibration).
TEST(GpuPrograms, Figure4cOrderingAndMagnitudes) {
  const double naive = run_kernel(GpuKernel::kNaive7pt, Precision::kSingle).mups;
  const double spatial = run_kernel(GpuKernel::kSpatial7pt, Precision::kSingle).mups;
  const double b35 = run_kernel(GpuKernel::kBlocked35D7pt, Precision::kSingle).mups;

  // paper: 3300 -> 9234 -> 13252..17115
  EXPECT_NEAR(naive, 3300, 0.35 * 3300);
  EXPECT_NEAR(spatial, 9234, 0.35 * 9234);
  EXPECT_GT(b35, 13252 * 0.8);
  EXPECT_LT(b35, 17115 * 1.2);
  EXPECT_GT(spatial / naive, 2.0);   // "2.8X"
  EXPECT_GT(b35 / spatial, 1.15);    // temporal blocking still wins
}

TEST(GpuPrograms, BoundTransitions) {
  EXPECT_TRUE(run_kernel(GpuKernel::kNaive7pt, Precision::kSingle).bandwidth_bound);
  EXPECT_FALSE(
      run_kernel(GpuKernel::kBlocked35D7pt, Precision::kSingle).bandwidth_bound);
}

// DP on GT200: the single DP unit per SM makes the spatially blocked
// kernel compute bound near the paper's 4600 Mupd/s — temporal blocking
// would add nothing (Section VII-A GPU).
TEST(GpuPrograms, SpatialDpComputeBound) {
  const auto r = run_kernel(GpuKernel::kSpatial7pt, Precision::kDouble);
  EXPECT_FALSE(r.bandwidth_bound);
  EXPECT_NEAR(r.mups, 4600, 0.45 * 4600);
  // Naive DP is slower (redundant transactions + DP issue cost).
  EXPECT_LT(run_kernel(GpuKernel::kNaive7pt, Precision::kDouble).mups, r.mups);
}

TEST(GpuPrograms, LbmNaiveNearPaperRate) {
  const auto r = run_kernel(GpuKernel::kNaiveLbm, Precision::kSingle);
  EXPECT_NEAR(r.mups, 485, 0.3 * 485);  // paper: 485 MLUPS
}

}  // namespace
}  // namespace s35::gpusim
