#include <gtest/gtest.h>

#include "stencil/distributed.h"

namespace s35::stencil {
namespace {

class DistributedP : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributedP, MatchesSingleDomainBitExact) {
  const auto [ranks, dim_t, steps] = GetParam();
  const long nx = 20, ny = 18, nz = 36;
  const auto stencil = default_stencil7<float>();

  grid::GridPair<float> reference(nx, ny, nz);
  reference.src().fill_random(808, -1.0f, 1.0f);
  core::Engine35 engine(3);
  SweepConfig cfg;
  cfg.dim_t = dim_t;
  cfg.dim_x = 14;
  run_sweep(Variant::kBlocked35D, stencil, reference, steps, cfg, engine);

  DistributedStencilDriver<Stencil7<float>, float> driver(nx, ny, nz, ranks, dim_t);
  grid::Grid3<float> initial(nx, ny, nz);
  initial.fill_random(808, -1.0f, 1.0f);
  driver.scatter(initial);
  driver.run(stencil, steps, cfg, engine);
  grid::Grid3<float> gathered(nx, ny, nz);
  driver.gather(gathered);

  EXPECT_EQ(grid::count_mismatches(reference.src(), gathered), 0)
      << "ranks=" << ranks << " dim_t=" << dim_t << " steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedP,
                         ::testing::Values(std::tuple{1, 2, 4}, std::tuple{2, 2, 4},
                                           std::tuple{3, 2, 6}, std::tuple{2, 3, 7},
                                           std::tuple{4, 1, 3}, std::tuple{4, 2, 5}));

// Communication accounting: per-step byte volume is dim_t-independent (the
// thicker halo amortizes over dim_t steps) while the message count drops
// by dim_t — the latency-amortization benefit.
TEST(Distributed, CommunicationAmortization) {
  const long n = 32;
  const auto stencil = default_stencil7<double>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_x = 20;

  CommStats stats[2];
  int idx = 0;
  for (int dim_t : {1, 4}) {
    DistributedStencilDriver<Stencil7<double>, double> driver(n, n, n, 2, dim_t);
    grid::Grid3<double> g(n, n, n);
    g.fill_random(1);
    driver.scatter(g);
    cfg.dim_t = dim_t;
    driver.run(stencil, 8, cfg, engine);
    stats[idx++] = driver.stats();
  }
  EXPECT_EQ(stats[0].time_steps, 8u);
  EXPECT_EQ(stats[1].time_steps, 8u);
  // Same bytes per step...
  EXPECT_NEAR(stats[1].bytes_per_step(), stats[0].bytes_per_step(),
              1e-9 * stats[0].bytes_per_step());
  // ...but 4x fewer messages.
  EXPECT_DOUBLE_EQ(stats[0].messages_per_step() / stats[1].messages_per_step(), 4.0);
}

TEST(Distributed, RejectsTooShallowSubdomains) {
  // 4 ranks x 8 planes each, halo 9 planes: must refuse.
  using Driver = DistributedStencilDriver<Stencil7<float>, float>;
  EXPECT_DEATH(Driver(16, 16, 32, 4, 9), "shallower");
}

TEST(Distributed, ScatterGatherRoundTrip) {
  const long n = 16;
  DistributedStencilDriver<Stencil7<float>, float> driver(n, n, n, 3, 2);
  grid::Grid3<float> in(n, n, n), out(n, n, n);
  in.fill_random(55);
  driver.scatter(in);
  driver.gather(out);
  EXPECT_EQ(grid::count_mismatches(in, out), 0);
}

}  // namespace
}  // namespace s35::stencil
