#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/partition.h"

namespace s35::parallel {
namespace {

TEST(ChunkRange, CoversWithoutGaps) {
  for (long n : {0L, 1L, 7L, 100L, 101L}) {
    for (int parts : {1, 2, 3, 8, 13}) {
      long expected_begin = 0;
      for (int i = 0; i < parts; ++i) {
        const auto [b, e] = chunk_range(n, parts, i);
        EXPECT_EQ(b, expected_begin);
        EXPECT_LE(b, e);
        expected_begin = e;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ChunkRange, BalancedWithinOne) {
  for (long n : {10L, 97L, 1000L}) {
    for (int parts : {3, 7, 16}) {
      long lo = n, hi = 0;
      for (int i = 0; i < parts; ++i) {
        const auto [b, e] = chunk_range(n, parts, i);
        lo = std::min(lo, e - b);
        hi = std::max(hi, e - b);
      }
      EXPECT_LE(hi - lo, 1);
    }
  }
}

// Property sweep: the row-span partition is a disjoint, ordered, exact cover
// with element counts balanced to within one — the paper's equal-work
// guarantee (Section V-D).
class RowSpanPartitionP
    : public ::testing::TestWithParam<std::tuple<long, long, int>> {};

TEST_P(RowSpanPartitionP, DisjointBalancedExactCover) {
  const auto [width, height, threads] = GetParam();
  const RowSpanPartition part(width, height, threads);

  std::vector<int> covered(static_cast<std::size_t>(width * height), 0);
  long lo = width * height, hi = 0;
  for (int tid = 0; tid < threads; ++tid) {
    long count = 0;
    for (const RowSpan& s : part.spans(tid)) {
      EXPECT_GE(s.y, 0);
      EXPECT_LT(s.y, height);
      EXPECT_LE(0, s.x_begin);
      EXPECT_LT(s.x_begin, s.x_end);
      EXPECT_LE(s.x_end, width);
      for (long x = s.x_begin; x < s.x_end; ++x)
        ++covered[static_cast<std::size_t>(s.y * width + x)];
      count += s.x_end - s.x_begin;
    }
    EXPECT_EQ(count, part.element_count(tid));
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  for (int c : covered) EXPECT_EQ(c, 1);
  EXPECT_LE(hi - lo, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RowSpanPartitionP,
    ::testing::Combine(::testing::Values<long>(1, 3, 17, 64, 360),
                       ::testing::Values<long>(1, 2, 11, 64),
                       ::testing::Values(1, 2, 4, 7, 16)));

// The paper's examples: 360 rows / 4 threads = 90 rows each (7-pt SP);
// 64 / 4 = 16 (LBM SP); 44 / 4 = 11 (LBM DP).
TEST(RowSpanPartition, PaperRowAssignments) {
  for (const auto& [rows, threads, expect] :
       std::vector<std::tuple<long, int, long>>{{360, 4, 90}, {64, 4, 16}, {44, 4, 11}}) {
    const RowSpanPartition part(100, rows, threads);  // any width
    for (int tid = 0; tid < threads; ++tid) {
      EXPECT_EQ(part.element_count(tid), expect * 100);
      // Whole-row assignment: all spans full width.
      for (const RowSpan& s : part.spans(tid)) {
        EXPECT_EQ(s.x_begin, 0);
        EXPECT_EQ(s.x_end, 100);
      }
    }
  }
}

// dimY < T: partial rows appear but balance still holds (Section V-D).
TEST(RowSpanPartition, PartialRowsWhenFewRows) {
  const RowSpanPartition part(10, 3, 8);  // 30 elements, 8 threads
  long total = 0;
  for (int tid = 0; tid < 8; ++tid) {
    const long c = part.element_count(tid);
    EXPECT_TRUE(c == 3 || c == 4);
    total += c;
  }
  EXPECT_EQ(total, 30);
}

TEST(ForEachSpan, MatchesMaterializedSpans) {
  const RowSpanPartition part(37, 11, 5);
  for (int tid = 0; tid < 5; ++tid) {
    std::vector<RowSpan> collected;
    for_each_span(37, 11, 5, tid, [&](long y, long x0, long x1) {
      collected.push_back({y, x0, x1});
    });
    const auto expected = part.spans(tid);
    ASSERT_EQ(collected.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(collected[i].y, expected[i].y);
      EXPECT_EQ(collected[i].x_begin, expected[i].x_begin);
      EXPECT_EQ(collected[i].x_end, expected[i].x_end);
    }
  }
}

TEST(ForEachSpan, EmptyRegion) {
  int calls = 0;
  for_each_span(0, 5, 2, 0, [&](long, long, long) { ++calls; });
  for_each_span(5, 0, 2, 1, [&](long, long, long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace s35::parallel
