#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "simd/simd.h"

namespace s35::simd {
namespace {

template <typename V>
class VecTest : public ::testing::Test {};

using VecTypes = ::testing::Types<Vec<float, ScalarTag>, Vec<double, ScalarTag>
#if defined(__SSE2__)
                                  ,
                                  Vec<float, SseTag>, Vec<double, SseTag>
#endif
#if defined(__AVX__)
                                  ,
                                  Vec<float, AvxTag>, Vec<double, AvxTag>
#endif
                                  >;
TYPED_TEST_SUITE(VecTest, VecTypes);

TYPED_TEST(VecTest, LoadStoreRoundTrip) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> buf(static_cast<std::size_t>(2 * V::width));
  for (int i = 0; i < 2 * V::width; ++i) buf[static_cast<std::size_t>(i)] = T(i + 1);

  V v = V::load(buf.data());
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width), T(0));
  v.store(out.data());
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], T(i + 1));

  // Unaligned round trip at offset 1.
  V u = V::loadu(buf.data() + 1);
  std::vector<T> uout(static_cast<std::size_t>(V::width) + 1);
  u.storeu(uout.data() + 1);
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(uout[static_cast<std::size_t>(i) + 1], T(i + 2));
}

TYPED_TEST(VecTest, ArithmeticMatchesScalar) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> a(static_cast<std::size_t>(V::width)), b(static_cast<std::size_t>(V::width));
  for (int i = 0; i < V::width; ++i) {
    a[static_cast<std::size_t>(i)] = T(1.5) * T(i + 1);
    b[static_cast<std::size_t>(i)] = T(0.25) * T(i + 3);
  }
  const V va = V::load(a.data()), vb = V::load(b.data());

  AlignedBuffer<T> out(static_cast<std::size_t>(V::width));
  (va + vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] + b[idx]);
  }
  (va - vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] - b[idx]);
  }
  (va * vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] * b[idx]);
  }
  (va / vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] / b[idx]);
  }
}

TYPED_TEST(VecTest, Set1Broadcasts) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width));
  V::set1(T(3.25)).store(out.data());
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], T(3.25));
}

TYPED_TEST(VecTest, ReduceAddSumsLanes) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> a(static_cast<std::size_t>(V::width));
  T expect = T(0);
  for (int i = 0; i < V::width; ++i) {
    a[static_cast<std::size_t>(i)] = T(i + 1);
    expect += T(i + 1);
  }
  EXPECT_EQ(V::load(a.data()).reduce_add(), expect);
}

TYPED_TEST(VecTest, StreamingStoreWritesThrough) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width), T(0));
  V::set1(T(9)).stream(out.data());
  stream_fence();
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], T(9));
}

TEST(Simd, DefaultBackendNameNonEmpty) {
  EXPECT_NE(default_backend_name(), nullptr);
  EXPECT_GT(std::strlen(default_backend_name()), 0u);
}

TEST(Simd, WidthsMatchInstructionSet) {
  EXPECT_EQ((Vec<float, ScalarTag>::width), 1);
  EXPECT_EQ((Vec<double, ScalarTag>::width), 1);
#if defined(__SSE2__)
  EXPECT_EQ((Vec<float, SseTag>::width), 4);   // the paper's SP SSE width
  EXPECT_EQ((Vec<double, SseTag>::width), 2);  // and DP
#endif
#if defined(__AVX__)
  EXPECT_EQ((Vec<float, AvxTag>::width), 8);
  EXPECT_EQ((Vec<double, AvxTag>::width), 4);
#endif
}

}  // namespace
}  // namespace s35::simd
