#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/aligned_buffer.h"
#include "simd/simd.h"

namespace s35::simd {
namespace {

template <typename V>
class VecTest : public ::testing::Test {};

using VecTypes = ::testing::Types<Vec<float, ScalarTag>, Vec<double, ScalarTag>
#if defined(__SSE2__)
                                  ,
                                  Vec<float, SseTag>, Vec<double, SseTag>
#endif
#if defined(__AVX__)
                                  ,
                                  Vec<float, AvxTag>, Vec<double, AvxTag>
#endif
#if defined(__AVX2__) && defined(__FMA__)
                                  ,
                                  Vec<float, Avx2Tag>, Vec<double, Avx2Tag>
#endif
#if defined(__AVX512F__)
                                  ,
                                  Vec<float, Avx512Tag>, Vec<double, Avx512Tag>
#endif
                                  >;
TYPED_TEST_SUITE(VecTest, VecTypes);

TYPED_TEST(VecTest, LoadStoreRoundTrip) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> buf(static_cast<std::size_t>(2 * V::width));
  for (int i = 0; i < 2 * V::width; ++i) buf[static_cast<std::size_t>(i)] = T(i + 1);

  V v = V::load(buf.data());
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width), T(0));
  v.store(out.data());
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], T(i + 1));

  // Unaligned round trip at offset 1.
  V u = V::loadu(buf.data() + 1);
  std::vector<T> uout(static_cast<std::size_t>(V::width) + 1);
  u.storeu(uout.data() + 1);
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(uout[static_cast<std::size_t>(i) + 1], T(i + 2));
}

TYPED_TEST(VecTest, ArithmeticMatchesScalar) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> a(static_cast<std::size_t>(V::width)), b(static_cast<std::size_t>(V::width));
  for (int i = 0; i < V::width; ++i) {
    a[static_cast<std::size_t>(i)] = T(1.5) * T(i + 1);
    b[static_cast<std::size_t>(i)] = T(0.25) * T(i + 3);
  }
  const V va = V::load(a.data()), vb = V::load(b.data());

  AlignedBuffer<T> out(static_cast<std::size_t>(V::width));
  (va + vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] + b[idx]);
  }
  (va - vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] - b[idx]);
  }
  (va * vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] * b[idx]);
  }
  (va / vb).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] / b[idx]);
  }
}

TYPED_TEST(VecTest, Set1Broadcasts) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width));
  V::set1(T(3.25)).store(out.data());
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], T(3.25));
}

TYPED_TEST(VecTest, ReduceAddSumsLanes) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> a(static_cast<std::size_t>(V::width));
  T expect = T(0);
  for (int i = 0; i < V::width; ++i) {
    a[static_cast<std::size_t>(i)] = T(i + 1);
    expect += T(i + 1);
  }
  EXPECT_EQ(V::load(a.data()).reduce_add(), expect);
}

TYPED_TEST(VecTest, StreamingStoreWritesThrough) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width), T(0));
  V::set1(T(9)).stream(out.data());
  stream_fence();
  for (int i = 0; i < V::width; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], T(9));
}

TYPED_TEST(VecTest, MaddWithoutFmaMatchesTwoRoundings) {
  using V = TypeParam;
  using T = typename V::value_type;
  AlignedBuffer<T> a(static_cast<std::size_t>(V::width)),
      b(static_cast<std::size_t>(V::width)), c(static_cast<std::size_t>(V::width));
  for (int i = 0; i < V::width; ++i) {
    a[static_cast<std::size_t>(i)] = T(1.0) / T(3) + T(i);
    b[static_cast<std::size_t>(i)] = T(0.7) * T(i + 1);
    c[static_cast<std::size_t>(i)] = T(-0.3) + T(i);
  }
  const V va = V::load(a.data()), vb = V::load(b.data()), vc = V::load(c.data());
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width));

  // mul_add<false> must be the two-rounding a*b + c on every backend,
  // including AVX2 — the fused version is only reachable via mul_add<true>.
  mul_add<false>(va, vb, vc).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], a[idx] * b[idx] + c[idx]);
  }
  neg_mul_add<false>(va, vb, vc).store(out.data());
  for (int i = 0; i < V::width; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(out[idx], c[idx] - a[idx] * b[idx]);
  }
}

TYPED_TEST(VecTest, MaddFusedIsCloseToExact) {
  using V = TypeParam;
  using T = typename V::value_type;
  // madd may round once (FMA) or twice; both must be within 1 ulp of the
  // two-rounding reference for these well-scaled inputs.
  const T a = T(1.0) / T(3), b = T(0.7), c = T(-0.2);
  AlignedBuffer<T> out(static_cast<std::size_t>(V::width));
  V::madd(V::set1(a), V::set1(b), V::set1(c)).store(out.data());
  const T ref = a * b + c;
  const T tol = std::abs(ref) * std::numeric_limits<T>::epsilon();
  for (int i = 0; i < V::width; ++i) {
    EXPECT_NEAR(out[static_cast<std::size_t>(i)], ref, tol);
  }
  V::nmadd(V::set1(a), V::set1(b), V::set1(c)).store(out.data());
  const T nref = c - a * b;
  const T ntol = std::abs(nref) * std::numeric_limits<T>::epsilon();
  for (int i = 0; i < V::width; ++i) {
    EXPECT_NEAR(out[static_cast<std::size_t>(i)], nref, ntol);
  }
}

TEST(Simd, DefaultBackendNameNonEmpty) {
  EXPECT_NE(default_backend_name(), nullptr);
  EXPECT_GT(std::strlen(default_backend_name()), 0u);
}

TEST(Simd, WidthsMatchInstructionSet) {
  EXPECT_EQ((Vec<float, ScalarTag>::width), 1);
  EXPECT_EQ((Vec<double, ScalarTag>::width), 1);
#if defined(__SSE2__)
  EXPECT_EQ((Vec<float, SseTag>::width), 4);   // the paper's SP SSE width
  EXPECT_EQ((Vec<double, SseTag>::width), 2);  // and DP
#endif
#if defined(__AVX__)
  EXPECT_EQ((Vec<float, AvxTag>::width), 8);
  EXPECT_EQ((Vec<double, AvxTag>::width), 4);
#endif
#if defined(__AVX2__) && defined(__FMA__)
  EXPECT_EQ((Vec<float, Avx2Tag>::width), 8);
  EXPECT_EQ((Vec<double, Avx2Tag>::width), 4);
#endif
#if defined(__AVX512F__)
  EXPECT_EQ((Vec<float, Avx512Tag>::width), 16);
  EXPECT_EQ((Vec<double, Avx512Tag>::width), 8);
#endif
}

TEST(Simd, PrefUnrollScalesWithRegisterFile) {
  EXPECT_EQ((pref_unroll<Vec<float, ScalarTag>>), 1);
#if defined(__AVX2__) && defined(__FMA__)
  EXPECT_EQ((pref_unroll<Vec<float, Avx2Tag>>), 4);  // 16 vector registers
#endif
#if defined(__AVX512F__)
  // 32 vector registers: double the register-blocking depth.
  EXPECT_EQ((pref_unroll<Vec<float, Avx512Tag>>), 8);
  EXPECT_EQ((pref_unroll<Vec<double, Avx512Tag>>), 8);
#endif
}

}  // namespace
}  // namespace s35::simd
