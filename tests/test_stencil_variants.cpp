#include <gtest/gtest.h>

#include "stencil/sweeps.h"

namespace s35::stencil {
namespace {

// Cross-variant equivalence on a larger grid: every blocking family must
// produce the same bits as the naive sweep (they share per-point
// arithmetic), under planner-style parameters.
TEST(StencilVariants, AllVariantsAgreeOnLargerGrid) {
  const long n = 56;
  const int steps = 6;
  const auto stencil = default_stencil7<float>();

  grid::GridPair<float> baseline(n, n, n);
  baseline.src().fill_random(2024, -1.0f, 1.0f);
  core::Engine35 engine(4);
  run_sweep(Variant::kNaive, stencil, baseline, steps, {}, engine);

  const auto make_cfg = [](int dim_t, long dim_x) {
    SweepConfig c;
    c.dim_t = dim_t;
    c.dim_x = dim_x;
    return c;
  };
  const struct {
    Variant v;
    SweepConfig cfg;
  } runs[] = {
      {Variant::kSpatial3D, make_cfg(2, 20)},
      {Variant::kSpatial25D, make_cfg(2, 24)},
      {Variant::kTemporalOnly, make_cfg(3, 0)},
      {Variant::kBlocked4D, make_cfg(2, 24)},
      {Variant::kBlocked35D, make_cfg(2, 24)},
      {Variant::kBlocked35D, make_cfg(3, 32)},
  };
  for (const auto& r : runs) {
    grid::GridPair<float> pair(n, n, n);
    pair.src().fill_random(2024, -1.0f, 1.0f);
    run_sweep(r.v, stencil, pair, steps, r.cfg, engine);
    EXPECT_EQ(grid::count_mismatches(baseline.src(), pair.src()), 0)
        << to_string(r.v) << " dim_t=" << r.cfg.dim_t;
  }
}

// Serialized (2R+1 planes, barrier per step) and parallel (2R+2, barrier
// per round) modes are alternative schedules of the same mathematics.
TEST(StencilVariants, SerializedEqualsParallelMode) {
  const long n = 40;
  const auto stencil = default_stencil7<double>();
  core::Engine35 engine(4);

  grid::GridPair<double> par(n, n, n), ser(n, n, n);
  par.src().fill_random(5, 0.0, 1.0);
  ser.src().fill_random(5, 0.0, 1.0);

  SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = 24;
  run_sweep(Variant::kBlocked35D, stencil, par, 6, cfg, engine);
  cfg.serialized = true;
  run_sweep(Variant::kBlocked35D, stencil, ser, 6, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(par.src(), ser.src()), 0);
}

// Thread count must never change results (bitwise).
TEST(StencilVariants, ThreadCountInvariance) {
  const long n = 44;
  const auto stencil = default_stencil7<float>();
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 20;

  grid::GridPair<float> one(n, n, n);
  one.src().fill_random(11);
  core::Engine35 e1(1);
  run_sweep(Variant::kBlocked35D, stencil, one, 4, cfg, e1);

  for (int threads : {2, 3, 5, 8}) {
    grid::GridPair<float> many(n, n, n);
    many.src().fill_random(11);
    core::Engine35 et(threads);
    run_sweep(Variant::kBlocked35D, stencil, many, 4, cfg, et);
    EXPECT_EQ(grid::count_mismatches(one.src(), many.src()), 0) << threads;
  }
}

// SIMD backends agree bit-for-bit on the full sweep.
TEST(StencilVariants, BackendsAgreeBitExact) {
  const long n = 36;
  const auto stencil = default_stencil7<float>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 20;

  grid::GridPair<float> scalar_pair(n, n, n);
  scalar_pair.src().fill_random(3);
  run_sweep<Stencil7<float>, float, simd::ScalarTag>(Variant::kBlocked35D, stencil,
                                                     scalar_pair, 4, cfg, engine);

#if defined(__SSE2__)
  grid::GridPair<float> sse_pair(n, n, n);
  sse_pair.src().fill_random(3);
  run_sweep<Stencil7<float>, float, simd::SseTag>(Variant::kBlocked35D, stencil,
                                                  sse_pair, 4, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(scalar_pair.src(), sse_pair.src()), 0);
#endif
#if defined(__AVX__)
  grid::GridPair<float> avx_pair(n, n, n);
  avx_pair.src().fill_random(3);
  run_sweep<Stencil7<float>, float, simd::AvxTag>(Variant::kBlocked35D, stencil,
                                                  avx_pair, 4, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(scalar_pair.src(), avx_pair.src()), 0);
#endif
}

// The interior fast path (alignment peel, register blocking, prefetch) is
// on by default, so every equivalence test above already exercises it; this
// pins the off-switch: disabling it must not change a single bit. Odd
// extents make the X span neither vector-width- nor unroll-multiple.
TEST(StencilVariants, FastPathOffMatchesOnBitExact) {
  const long nx = 37, ny = 23, nz = 11;
  const auto stencil = default_stencil7<float>();
  core::Engine35 engine(3);
  for (Variant v : {Variant::kNaive, Variant::kBlocked35D}) {
    SweepConfig on, off;
    on.dim_t = off.dim_t = 2;
    on.dim_x = off.dim_x = 16;
    off.kernel.fast_path = false;
    grid::GridPair<float> a(nx, ny, nz), b(nx, ny, nz);
    a.src().fill_random(9, -1.0f, 1.0f);
    b.src().fill_random(9, -1.0f, 1.0f);
    run_sweep(v, stencil, a, 4, on, engine);
    run_sweep(v, stencil, b, 4, off, engine);
    EXPECT_EQ(grid::count_mismatches(a.src(), b.src()), 0) << to_string(v);
  }
}

// allow_fma fuses each multiply-add into one rounding, so results may
// differ from the exact two-rounding tree — but only at rounding-error
// scale. (On builds without a fused backend the two runs are identical.)
TEST(StencilVariants, FmaModeStaysWithinTolerance) {
  const long n = 32;
  const auto stencil = default_stencil7<float>();
  core::Engine35 engine(2);
  SweepConfig cfg, fma_cfg;
  cfg.dim_t = fma_cfg.dim_t = 2;
  cfg.dim_x = fma_cfg.dim_x = 16;
  fma_cfg.kernel.allow_fma = true;

  grid::GridPair<float> exact(n, n, n), fused(n, n, n);
  exact.src().fill_random(13, -1.0f, 1.0f);
  fused.src().fill_random(13, -1.0f, 1.0f);
  run_sweep(Variant::kBlocked35D, stencil, exact, 4, cfg, engine);
  run_sweep(Variant::kBlocked35D, stencil, fused, 4, fma_cfg, engine);
  EXPECT_LT(grid::max_abs_diff(exact.src(), fused.src()), 1e-4);
}

// update_row must equal per-point evaluation for every span alignment
// (vector body + scalar tail).
TEST(UpdateRow, MatchesPointForAllSpanOffsets) {
  using V = simd::Vec<float, simd::DefaultTag>;
  const auto stencil = default_stencil7<float>();
  grid::Grid3<float> g(64, 3, 3);
  g.fill_random(42, -1.0f, 1.0f);
  const auto acc = [&](int dz, int dy) -> const float* { return g.row(1 + dy, 1 + dz); };

  std::vector<float> expect(64), got(64);
  for (long x = 1; x < 63; ++x) expect[static_cast<std::size_t>(x)] = stencil.point(acc, x);

  for (long x0 = 1; x0 < 12; ++x0) {
    for (long x1 = 50; x1 < 63; ++x1) {
      std::fill(got.begin(), got.end(), 0.0f);
      update_row<V>(stencil, acc, got.data(), x0, x1);
      for (long x = x0; x < x1; ++x)
        ASSERT_EQ(got[static_cast<std::size_t>(x)], expect[static_cast<std::size_t>(x)])
            << "x=" << x << " span [" << x0 << "," << x1 << ")";
    }
  }
}

// The register-blocked fast path (scalar peel to alignment, 2xW unroll,
// optional streaming stores) must produce the generic loop's bits for every
// span offset and length.
TEST(UpdateRow, FastPathMatchesGenericForAllSpanOffsets) {
  using V = simd::Vec<float, simd::DefaultTag>;
  const auto stencil = default_stencil7<float>();
  grid::Grid3<float> g(64, 3, 3);
  g.fill_random(42, -1.0f, 1.0f);
  const auto acc = [&](int dz, int dy) -> const float* { return g.row(1 + dy, 1 + dz); };

  AlignedBuffer<float> expect(64, 0.0f), got(64, 0.0f);
  update_row<V>(stencil, acc, expect.data(), 1, 63);

  for (const bool stream : {false, true}) {
    RowFastOpts opt;
    opt.stream = stream;
    for (long x0 = 1; x0 < 12; ++x0) {
      for (long x1 = 50; x1 < 63; ++x1) {
        got.fill(0.0f);
        const bool fast =
            update_row_auto<V>(stencil, acc, got.data(), x0, x1, true, false, opt);
        simd::stream_fence();
        EXPECT_TRUE(fast);
        for (long x = x0; x < x1; ++x)
          ASSERT_EQ(got[static_cast<std::size_t>(x)], expect[static_cast<std::size_t>(x)])
              << "x=" << x << " span [" << x0 << "," << x1 << ") stream=" << stream;
      }
    }
  }
}

// The Y unroll-and-jam pair path shares the two center-plane rows between
// both outputs; it must still match two independent single-row updates.
TEST(UpdateRow, RowPairMatchesSingleRows) {
  using V = simd::Vec<float, simd::DefaultTag>;
  const auto stencil = default_stencil7<float>();
  grid::Grid3<float> g(48, 5, 3);
  g.fill_random(7, -1.0f, 1.0f);
  // Pair of rows y=1 and y=2 of the middle plane; the pair accessor is
  // relative to the first row (dy in [-1, 2]).
  const auto acc = [&](int dz, int dy) -> const float* { return g.row(1 + dy, 1 + dz); };
  const auto acc2 = [&](int dz, int dy) -> const float* { return g.row(2 + dy, 1 + dz); };

  AlignedBuffer<float> e0(48, 0.0f), e1(48, 0.0f), g0(48, 0.0f), g1(48, 0.0f);
  RowFastOpts opt;
  for (long x0 = 1; x0 < 10; ++x0) {
    for (long x1 = 38; x1 < 47; ++x1) {
      update_row<V>(stencil, acc, e0.data(), x0, x1);
      update_row<V>(stencil, acc2, e1.data(), x0, x1);
      g0.fill(0.0f);
      g1.fill(0.0f);
      stencil.rows2_fast<V, false>(acc, g0.data(), g1.data(), x0, x1, opt);
      for (long x = x0; x < x1; ++x) {
        const auto i = static_cast<std::size_t>(x);
        ASSERT_EQ(g0[i], e0[i]) << "row0 x=" << x << " span [" << x0 << "," << x1 << ")";
        ASSERT_EQ(g1[i], e1[i]) << "row1 x=" << x << " span [" << x0 << "," << x1 << ")";
      }
    }
  }
}

TEST(UpdateRow, Stencil27FastPathMatchesGeneric) {
  using V = simd::Vec<float, simd::DefaultTag>;
  const auto stencil = default_stencil27<float>();
  grid::Grid3<float> g(40, 3, 3);
  g.fill_random(21, -1.0f, 1.0f);
  const auto acc = [&](int dz, int dy) -> const float* { return g.row(1 + dy, 1 + dz); };

  AlignedBuffer<float> expect(40, 0.0f), got(40, 0.0f);
  update_row<V>(stencil, acc, expect.data(), 1, 39);

  RowFastOpts opt;
  for (long x0 = 1; x0 < 10; ++x0) {
    for (long x1 = 30; x1 < 39; ++x1) {
      got.fill(0.0f);
      const bool fast =
          update_row_auto<V>(stencil, acc, got.data(), x0, x1, true, false, opt);
      EXPECT_TRUE(fast);
      for (long x = x0; x < x1; ++x)
        ASSERT_EQ(got[static_cast<std::size_t>(x)], expect[static_cast<std::size_t>(x)])
            << "x=" << x << " span [" << x0 << "," << x1 << ")";
    }
  }
}

TEST(FreezeBoundary, CopiesExactlyTheShell) {
  const long n = 10;
  grid::Grid3<float> src(n, n, n), dst(n, n, n);
  src.fill(3.0f);
  dst.fill(-1.0f);
  freeze_boundary(src, dst, 2);
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x) {
        const bool shell = x < 2 || x >= n - 2 || y < 2 || y >= n - 2 || z < 2 ||
                           z >= n - 2;
        EXPECT_EQ(dst.at(x, y, z), shell ? 3.0f : -1.0f);
      }
}

TEST(VariantNames, AreStable) {
  EXPECT_STREQ(to_string(Variant::kNaive), "naive");
  EXPECT_STREQ(to_string(Variant::kBlocked35D), "3.5d");
  EXPECT_STREQ(to_string(Variant::kBlocked4D), "4d");
  EXPECT_STREQ(to_string(Variant::kSpatial25D), "2.5d-spatial");
}

}  // namespace
}  // namespace s35::stencil
