#include <gtest/gtest.h>

#include "stencil/sweeps.h"

namespace s35::stencil {
namespace {

// Cross-variant equivalence on a larger grid: every blocking family must
// produce the same bits as the naive sweep (they share per-point
// arithmetic), under planner-style parameters.
TEST(StencilVariants, AllVariantsAgreeOnLargerGrid) {
  const long n = 56;
  const int steps = 6;
  const auto stencil = default_stencil7<float>();

  grid::GridPair<float> baseline(n, n, n);
  baseline.src().fill_random(2024, -1.0f, 1.0f);
  core::Engine35 engine(4);
  run_sweep(Variant::kNaive, stencil, baseline, steps, {}, engine);

  const struct {
    Variant v;
    SweepConfig cfg;
  } runs[] = {
      {Variant::kSpatial3D, {.dim_x = 20}},
      {Variant::kSpatial25D, {.dim_x = 24}},
      {Variant::kTemporalOnly, {.dim_t = 3}},
      {Variant::kBlocked4D, {.dim_t = 2, .dim_x = 24}},
      {Variant::kBlocked35D, {.dim_t = 2, .dim_x = 24}},
      {Variant::kBlocked35D, {.dim_t = 3, .dim_x = 32}},
  };
  for (const auto& r : runs) {
    grid::GridPair<float> pair(n, n, n);
    pair.src().fill_random(2024, -1.0f, 1.0f);
    run_sweep(r.v, stencil, pair, steps, r.cfg, engine);
    EXPECT_EQ(grid::count_mismatches(baseline.src(), pair.src()), 0)
        << to_string(r.v) << " dim_t=" << r.cfg.dim_t;
  }
}

// Serialized (2R+1 planes, barrier per step) and parallel (2R+2, barrier
// per round) modes are alternative schedules of the same mathematics.
TEST(StencilVariants, SerializedEqualsParallelMode) {
  const long n = 40;
  const auto stencil = default_stencil7<double>();
  core::Engine35 engine(4);

  grid::GridPair<double> par(n, n, n), ser(n, n, n);
  par.src().fill_random(5, 0.0, 1.0);
  ser.src().fill_random(5, 0.0, 1.0);

  SweepConfig cfg;
  cfg.dim_t = 3;
  cfg.dim_x = 24;
  run_sweep(Variant::kBlocked35D, stencil, par, 6, cfg, engine);
  cfg.serialized = true;
  run_sweep(Variant::kBlocked35D, stencil, ser, 6, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(par.src(), ser.src()), 0);
}

// Thread count must never change results (bitwise).
TEST(StencilVariants, ThreadCountInvariance) {
  const long n = 44;
  const auto stencil = default_stencil7<float>();
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 20;

  grid::GridPair<float> one(n, n, n);
  one.src().fill_random(11);
  core::Engine35 e1(1);
  run_sweep(Variant::kBlocked35D, stencil, one, 4, cfg, e1);

  for (int threads : {2, 3, 5, 8}) {
    grid::GridPair<float> many(n, n, n);
    many.src().fill_random(11);
    core::Engine35 et(threads);
    run_sweep(Variant::kBlocked35D, stencil, many, 4, cfg, et);
    EXPECT_EQ(grid::count_mismatches(one.src(), many.src()), 0) << threads;
  }
}

// SIMD backends agree bit-for-bit on the full sweep.
TEST(StencilVariants, BackendsAgreeBitExact) {
  const long n = 36;
  const auto stencil = default_stencil7<float>();
  core::Engine35 engine(2);
  SweepConfig cfg;
  cfg.dim_t = 2;
  cfg.dim_x = 20;

  grid::GridPair<float> scalar_pair(n, n, n);
  scalar_pair.src().fill_random(3);
  run_sweep<Stencil7<float>, float, simd::ScalarTag>(Variant::kBlocked35D, stencil,
                                                     scalar_pair, 4, cfg, engine);

#if defined(__SSE2__)
  grid::GridPair<float> sse_pair(n, n, n);
  sse_pair.src().fill_random(3);
  run_sweep<Stencil7<float>, float, simd::SseTag>(Variant::kBlocked35D, stencil,
                                                  sse_pair, 4, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(scalar_pair.src(), sse_pair.src()), 0);
#endif
#if defined(__AVX__)
  grid::GridPair<float> avx_pair(n, n, n);
  avx_pair.src().fill_random(3);
  run_sweep<Stencil7<float>, float, simd::AvxTag>(Variant::kBlocked35D, stencil,
                                                  avx_pair, 4, cfg, engine);
  EXPECT_EQ(grid::count_mismatches(scalar_pair.src(), avx_pair.src()), 0);
#endif
}

// update_row must equal per-point evaluation for every span alignment
// (vector body + scalar tail).
TEST(UpdateRow, MatchesPointForAllSpanOffsets) {
  using V = simd::Vec<float, simd::DefaultTag>;
  const auto stencil = default_stencil7<float>();
  grid::Grid3<float> g(64, 3, 3);
  g.fill_random(42, -1.0f, 1.0f);
  const auto acc = [&](int dz, int dy) -> const float* { return g.row(1 + dy, 1 + dz); };

  std::vector<float> expect(64), got(64);
  for (long x = 1; x < 63; ++x) expect[static_cast<std::size_t>(x)] = stencil.point(acc, x);

  for (long x0 = 1; x0 < 12; ++x0) {
    for (long x1 = 50; x1 < 63; ++x1) {
      std::fill(got.begin(), got.end(), 0.0f);
      update_row<V>(stencil, acc, got.data(), x0, x1);
      for (long x = x0; x < x1; ++x)
        ASSERT_EQ(got[static_cast<std::size_t>(x)], expect[static_cast<std::size_t>(x)])
            << "x=" << x << " span [" << x0 << "," << x1 << ")";
    }
  }
}

TEST(FreezeBoundary, CopiesExactlyTheShell) {
  const long n = 10;
  grid::Grid3<float> src(n, n, n), dst(n, n, n);
  src.fill(3.0f);
  dst.fill(-1.0f);
  freeze_boundary(src, dst, 2);
  for (long z = 0; z < n; ++z)
    for (long y = 0; y < n; ++y)
      for (long x = 0; x < n; ++x) {
        const bool shell = x < 2 || x >= n - 2 || y < 2 || y >= n - 2 || z < 2 ||
                           z >= n - 2;
        EXPECT_EQ(dst.at(x, y, z), shell ? 3.0f : -1.0f);
      }
}

TEST(VariantNames, AreStable) {
  EXPECT_STREQ(to_string(Variant::kNaive), "naive");
  EXPECT_STREQ(to_string(Variant::kBlocked35D), "3.5d");
  EXPECT_STREQ(to_string(Variant::kBlocked4D), "4d");
  EXPECT_STREQ(to_string(Variant::kSpatial25D), "2.5d-spatial");
}

}  // namespace
}  // namespace s35::stencil
