#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "grid/vtk.h"
#include "lbm/forces.h"
#include "lbm/sweeps.h"

namespace s35 {
namespace {

TEST(MomentumExchange, ZeroAtRest) {
  const long n = 14;
  lbm::Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_solid_box(5, 9, 5, 9, 5, 9);
  geom.finalize();
  lbm::Lattice<double> lat(n, n, n);
  lat.init_equilibrium();
  const auto f = lbm::momentum_exchange_force(lat, geom, 5, 9, 5, 9, 5, 9);
  EXPECT_NEAR(f.x, 0.0, 1e-12);
  EXPECT_NEAR(f.y, 0.0, 1e-12);
  EXPECT_NEAR(f.z, 0.0, 1e-12);
}

// Drag on an obstacle in a lid-driven cavity follows the *local* flow
// direction (at mid-height the cavity's return flow runs against the lid),
// and mirrors exactly when the lid reverses.
TEST(MomentumExchange, DragFollowsFlowDirection) {
  const long n = 20;
  lbm::Geometry geom(n, n, n);
  geom.set_box_walls();
  geom.set_lid();
  geom.set_solid_box(8, 12, 10, 14, 8, 12);  // mid-height: return-flow region
  geom.finalize();

  core::Engine35 engine(2);
  lbm::LatticePair<double> fwd_pair(n, n, n), rev_pair(n, n, n);
  const auto run_and_measure = [&](double lid_u, lbm::LatticePair<double>& pair) {
    lbm::BgkParams<double> prm;
    prm.omega = 1.2;
    prm.u_wall[0] = lid_u;
    pair.src().init_equilibrium();
    lbm::SweepConfig cfg;
    cfg.dim_t = 2;
    cfg.dim_x = 14;
    lbm::run_lbm(lbm::Variant::kBlocked35D, geom, prm, pair, 120, cfg, engine);
    return lbm::momentum_exchange_force(pair.src(), geom, 8, 12, 10, 14, 8, 12);
  };

  const auto fwd = run_and_measure(0.08, fwd_pair);
  // Local flow just upstream of the obstacle (same heights, x to its left).
  double u_local = 0.0;
  int samples = 0;
  for (long y = 10; y < 14; ++y)
    for (long z = 8; z < 12; ++z) {
      double u[3];
      fwd_pair.src().velocity(5, y, z, u);
      u_local += u[0];
      ++samples;
    }
  u_local /= samples;
  ASSERT_GT(std::abs(u_local), 1e-6);
  EXPECT_GT(fwd.x * u_local, 0.0) << "drag must follow the local flow";

  const auto rev = run_and_measure(-0.08, rev_pair);
  EXPECT_NEAR(rev.x, -fwd.x, 1e-9 + 1e-6 * std::abs(fwd.x));
  // Symmetric in z: no side force.
  EXPECT_NEAR(fwd.z, 0.0, 1e-9 + 0.05 * std::abs(fwd.x));
}

TEST(Vtk, ScalarFileWellFormed) {
  grid::Grid3<float> g(4, 3, 2);
  g.fill_with([](long x, long y, long z) { return float(x + 10 * y + 100 * z); });
  const std::string path = ::testing::TempDir() + "/s35_scalar.vtk";
  ASSERT_TRUE(grid::write_vtk_scalar(path, g, "temperature"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)), {});
  EXPECT_NE(all.find("DIMENSIONS 4 3 2"), std::string::npos);
  EXPECT_NE(all.find("POINT_DATA 24"), std::string::npos);
  EXPECT_NE(all.find("SCALARS temperature float 1"), std::string::npos);
  // 24 data lines after the header.
  std::istringstream ss(all);
  std::string line;
  int data_lines = -1;
  while (std::getline(ss, line)) {
    if (data_lines >= 0) ++data_lines;
    if (line.rfind("LOOKUP_TABLE", 0) == 0) data_lines = 0;
  }
  EXPECT_EQ(data_lines, 24);
  std::remove(path.c_str());
}

TEST(Vtk, VectorFileWellFormed) {
  const std::string path = ::testing::TempDir() + "/s35_vec.vtk";
  ASSERT_TRUE(grid::write_vtk_vectors(path, 3, 3, 3, [](long x, long y, long z, int c) {
    return static_cast<double>(c == 0 ? x : (c == 1 ? y : z));
  }));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)), {});
  EXPECT_NE(all.find("VECTORS velocity float"), std::string::npos);
  EXPECT_NE(all.find("POINT_DATA 27"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s35
